#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/macros.h"

namespace fastod {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ------------------------------------------------------------- writer

void JsonWriter::BeforeValue() {
  if (stack_.empty()) return;
  Frame& top = stack_.back();
  if (top.kind == '{') {
    // Object values must be introduced by Key().
    FASTOD_CHECK(top.key_pending);
    top.key_pending = false;
  } else if (top.has_value) {
    out_ += ", ";
  }
  top.has_value = true;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back({'{'});
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  FASTOD_CHECK(!stack_.empty() && stack_.back().kind == '{' &&
               !stack_.back().key_pending);
  stack_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back({'['});
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  FASTOD_CHECK(!stack_.empty() && stack_.back().kind == '[');
  stack_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& key) {
  FASTOD_CHECK(!stack_.empty() && stack_.back().kind == '{' &&
               !stack_.back().key_pending);
  if (stack_.back().has_value) out_ += ", ";
  stack_.back().key_pending = true;
  stack_.back().has_value = false;  // BeforeValue handles the comma above
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\": ";
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";  // JSON has no Inf/NaN literals
    return *this;
  }
  // %g, not %f: a fixed six-decimal rendering flushes small fractions
  // (support 1e-7 on a huge relation) to 0.000000 and cannot represent
  // large magnitudes in bounded width.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(const std::string& json) {
  BeforeValue();
  out_ += json;
  return *this;
}

// ------------------------------------------------------------- parser

int64_t JsonValue::int_value() const {
  if (std::isnan(number_)) return 0;
  // ±2^53: the largest magnitude at which doubles still hold every
  // integer exactly, and comfortably inside int64_t.
  constexpr double kLimit = 9007199254740992.0;
  if (number_ >= kLimit) return static_cast<int64_t>(kLimit);
  if (number_ <= -kLimit) return static_cast<int64_t>(-kLimit);
  return static_cast<int64_t>(number_);
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::string JsonValue::Dump() const {
  switch (type_) {
    case Type::kNull:
      return "null";
    case Type::kBool:
      return bool_ ? "true" : "false";
    case Type::kNumber: {
      // Integral values render without a fraction so ids round-trip.
      if (number_ == std::floor(number_) && std::isfinite(number_) &&
          std::abs(number_) < 1e15) {
        return std::to_string(static_cast<int64_t>(number_));
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", number_);
      return buf;
    }
    case Type::kString:
      return "\"" + JsonEscape(string_) + "\"";
    case Type::kArray: {
      std::string out = "[";
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ", ";
        out += array_[i].Dump();
      }
      return out + "]";
    }
    case Type::kObject: {
      std::string out = "{";
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ", ";
        out += "\"" + JsonEscape(object_[i].first) +
               "\": " + object_[i].second.Dump();
      }
      return out + "}";
    }
  }
  return "null";
}

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    if (Status s = ParseValue(&value, 0); !s.ok()) return s;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type_ = JsonValue::Type::kString;
        return ParseString(&out->string_);
      case 't':
      case 'f':
        return ParseLiteral(out, c == 't' ? "true" : "false",
                            JsonValue::Type::kBool, c == 't');
      case 'n':
        return ParseLiteral(out, "null", JsonValue::Type::kNull, false);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(JsonValue* out, const char* word,
                      JsonValue::Type type, bool value) {
    size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) {
      return Error(std::string("invalid literal (expected '") + word + "')");
    }
    pos_ += len;
    out->type_ = type;
    out->bool_ = value;
    return Status::Ok();
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      return Error("malformed number '" + token + "'");
    }
    out->type_ = JsonValue::Type::kNumber;
    out->number_ = value;
    return Status::Ok();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          *out += '"';
          break;
        case '\\':
          *out += '\\';
          break;
        case '/':
          *out += '/';
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("invalid hex digit in \\u escape");
            }
          }
          // UTF-8 encode the code point (surrogate pairs are passed
          // through as two 3-byte sequences; adequate for option values).
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error(std::string("invalid escape '\\") + esc + "'");
      }
    }
    return Error("unterminated string");
  }

  Status ParseArray(JsonValue* out, int depth) {
    Consume('[');
    out->type_ = JsonValue::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::Ok();
    while (true) {
      JsonValue item;
      if (Status s = ParseValue(&item, depth + 1); !s.ok()) return s;
      out->array_.push_back(std::move(item));
      SkipWhitespace();
      if (Consume(']')) return Status::Ok();
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    Consume('{');
    out->type_ = JsonValue::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipWhitespace();
      std::string key;
      if (Status s = ParseString(&key); !s.ok()) return s;
      if (out->Find(key) != nullptr) {
        return Error("duplicate object key '" + key + "'");
      }
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      if (Status s = ParseValue(&value, depth + 1); !s.ok()) return s;
      out->object_.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::Ok();
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

Result<JsonValue> ParseJson(const std::string& text) {
  return JsonParser(text).Parse();
}

}  // namespace fastod
