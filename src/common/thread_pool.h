// A minimal fixed-size thread pool for the discovery algorithms and for
// session scheduling in the service layer.
//
// Two execution shapes are built on these workers. ParallelFor covers
// fixed iteration spaces (batch partition products, per-node loops in
// the serial engines). For the dependency-driven lattice search — where
// a node becomes runnable the moment its parents' partitions exist —
// common/task_graph.h layers a work-stealing dynamic task scheduler on
// top of the same pool; see docs/CONCURRENCY.md for the combined
// thread-safety contract. Results are merged in canonical node order by
// the engines, keeping output deterministic regardless of thread count
// (verified by tests/parallel_test.cc).
//
// Submit() adds fire-and-forget task scheduling on the same workers: the
// DiscoveryService (service/discovery_service.h) queues whole discovery
// sessions this way, so at most num_threads() sessions execute at once and
// the rest wait their turn. Tasks and ParallelFor loops share the workers;
// a worker busy with a long task simply never joins a loop (the loop's
// caller always participates, so loops cannot starve).
#ifndef FASTOD_COMMON_THREAD_POOL_H_
#define FASTOD_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fastod {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1). Workers are named
  /// "<name_prefix>-<i>" where the platform supports thread names
  /// (pthread_setname_np truncates to 15 characters), so pool threads
  /// are attributable in gdb/top/TSan reports. The default prefix marks
  /// the shared service pool; engine-private pools pass their own (see
  /// algo/fastod.cc).
  explicit ThreadPool(int num_threads,
                      const char* name_prefix = "fastod-wkr");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Runs body(i) for every i in [0, count), distributing dynamically in
  /// chunks; blocks until all iterations finish. The calling thread
  /// participates. body must be safe to call concurrently for distinct i.
  void ParallelFor(int64_t count, const std::function<void(int64_t)>& body);

  /// Enqueues a task for execution on the next free worker and returns
  /// immediately. Tasks run in submission order (one worker each) and may
  /// overlap arbitrarily with each other and with ParallelFor loops.
  /// Shutdown drains the queue: every accepted task runs before the pool
  /// is torn down, so tasks may safely reference state that outlives the
  /// pool object. An exception escaping a task is caught at the worker
  /// boundary and discarded — the worker survives; tasks that need the
  /// failure must catch it themselves and report through their own
  /// channel (as DiscoverySession::Run does via Status).
  ///
  /// Returns false — and does not take the task — once Stop() has begun,
  /// instead of racing shutdown. Callers owning a failure channel
  /// surface that as kUnavailable (see DiscoveryService::Submit).
  [[nodiscard]] bool Submit(std::function<void()> task);

  /// Drains queued tasks and joins the workers. Idempotent; also run by
  /// the destructor. After Stop(), Submit() refuses new tasks.
  void Stop();

 private:
  struct ForLoop {
    int64_t count = 0;
    int64_t chunk = 1;
    std::atomic<int64_t> next{0};
    std::atomic<int64_t> done{0};
    int refs = 0;  // workers currently draining; guarded by mutex_
    const std::function<void(int64_t)>* body = nullptr;
  };

  void WorkerMain();
  // Claims and runs chunks of the active loop; returns when exhausted.
  void DrainLoop(ForLoop* loop);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  ForLoop* active_ = nullptr;  // guarded by mutex_ for hand-off
  uint64_t generation_ = 0;    // bumps per ParallelFor to wake workers
  std::deque<std::function<void()>> tasks_;  // guarded by mutex_
  bool shutdown_ = false;
};

}  // namespace fastod

#endif  // FASTOD_COMMON_THREAD_POOL_H_
