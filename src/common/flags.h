// A minimal command-line flag parser for the fastod CLI tool.
//
// Supports --name=value and --name (bools), typed registration with
// defaults, and positional arguments. No global state: each FlagSet is
// self-contained, so tests can drive parsing directly.
#ifndef FASTOD_COMMON_FLAGS_H_
#define FASTOD_COMMON_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace fastod {

class FlagSet {
 public:
  /// Registers a flag with a default. Pointers must outlive Parse().
  void AddString(const std::string& name, std::string* value,
                 const std::string& help);
  void AddInt(const std::string& name, int64_t* value,
              const std::string& help);
  void AddDouble(const std::string& name, double* value,
                 const std::string& help);
  void AddBool(const std::string& name, bool* value, const std::string& help);

  /// Parses arguments (excluding argv[0]). Arguments not starting with
  /// "--" are collected as positionals. Unknown flags and malformed values
  /// are errors.
  Status Parse(const std::vector<std::string>& args);

  const std::vector<std::string>& positional() const { return positional_; }

  /// One line per flag: "  --name (default: ...)  help".
  std::string HelpText() const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };
  struct Flag {
    std::string name;
    Type type;
    void* target;
    std::string help;
    std::string default_repr;
  };
  Status Apply(const Flag& flag, const std::string& value);
  const Flag* Find(const std::string& name) const;

  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace fastod

#endif  // FASTOD_COMMON_FLAGS_H_
