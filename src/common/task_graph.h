// A dynamic task graph scheduler with per-worker work-stealing deques,
// layered on ThreadPool.
//
// ParallelFor (thread_pool.h) is the right tool for a fixed iteration
// space known up front. The lattice search is not that shape: a node
// becomes runnable the moment its parents' stripped partitions exist,
// which happens at unpredictable times as sibling subtrees race ahead.
// TaskGraph models exactly that — tasks are spawned dynamically (often
// from inside other tasks, as dependency counters hit zero) and executed
// by a fixed party of workers until the graph drains.
//
// Scheduling discipline is classic work-stealing:
//   - each worker owns a deque; Spawn() from inside a task pushes onto
//     the spawning worker's own deque (locality: a node's children reuse
//     the partitions their parent just built),
//   - a worker pops its own deque from the back (LIFO, depth-first, keeps
//     the working set hot) and steals from other deques at the front
//     (FIFO, takes the oldest — largest — piece of work),
//   - idle workers sleep on a condition variable and are woken per spawn.
//
// Determinism contract: TaskGraph guarantees nothing about execution
// order — callers that need deterministic output must buffer per-task
// results and merge them in a canonical order themselves (see
// algo/fastod.cc's level emission cascade, and docs/CONCURRENCY.md).
//
// Exceptions: the first exception thrown by a task is captured; the
// remaining queued tasks are discarded (popped but not run) so the graph
// still drains, and Run() rethrows the captured exception on the calling
// thread. This mirrors how ParallelFor callers see failures and keeps the
// session error path (Status out of Algorithm::Execute) intact.
#ifndef FASTOD_COMMON_TASK_GRAPH_H_
#define FASTOD_COMMON_TASK_GRAPH_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace fastod {

class ThreadPool;

class TaskGraph {
 public:
  /// A graph executed by `pool`'s workers plus the thread that calls
  /// Run(). `pool` may be null (or stopped): Run() then executes every
  /// task inline on the calling thread — same semantics, no concurrency.
  /// The pool is borrowed and must outlive the graph.
  explicit TaskGraph(ThreadPool* pool);

  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Enqueues a task. Thread-safe; callable before Run() (to seed the
  /// graph) and from inside running tasks (to add continuations as
  /// dependencies resolve). A task spawned from inside a task lands on
  /// the spawning worker's own deque; external spawns are distributed
  /// round-robin.
  void Spawn(std::function<void()> task);

  /// Executes tasks until the graph is drained: no task queued and no
  /// task running (tasks may spawn more tasks at any point before they
  /// return). The calling thread participates as a worker. Rethrows the
  /// first exception any task threw, after the drain completes. A graph
  /// may be reused: seed with Spawn() and Run() again after Run()
  /// returns (never concurrently).
  void Run();

  /// Scheduling telemetry, stable after Run() returns.
  int64_t spawned() const { return spawned_.load(std::memory_order_relaxed); }
  int64_t stolen() const { return stolen_.load(std::memory_order_relaxed); }
  int64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::mutex mutex;
    std::deque<std::function<void()>> deque;  // guarded by mutex
  };

  // Runs tasks on slot `slot` until the graph drains.
  void WorkerLoop(int slot);
  // Own deque back, else steal another front; null when everything is
  // momentarily empty.
  std::function<void()> Pop(int slot);

  ThreadPool* pool_;  // borrowed; may be null
  std::vector<std::unique_ptr<Slot>> slots_;

  // Lifecycle counters. outstanding_ counts spawned-but-unfinished tasks
  // (the drain condition); queued_ counts spawned-but-unpopped tasks (the
  // idle-sleep condition).
  std::atomic<int64_t> outstanding_{0};
  std::atomic<int64_t> queued_{0};
  std::atomic<uint64_t> round_robin_{0};

  std::atomic<int64_t> spawned_{0};
  std::atomic<int64_t> stolen_{0};
  std::atomic<int64_t> executed_{0};

  // Idle workers sleep here; Spawn and task completion wake them.
  std::mutex mutex_;
  std::condition_variable wake_;

  // First task exception; drains the rest of the graph unrun.
  std::atomic<bool> abandoned_{false};
  std::exception_ptr first_error_;  // guarded by mutex_
};

}  // namespace fastod

#endif  // FASTOD_COMMON_TASK_GRAPH_H_
