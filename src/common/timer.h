// Wall-clock timing utilities used by the discovery algorithms (per-level
// statistics, Exp-7) and the benchmark harness.
#ifndef FASTOD_COMMON_TIMER_H_
#define FASTOD_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace fastod {

/// Monotonic wall-clock stopwatch. Starts running on construction.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart().
  double ElapsedSeconds() const;
  int64_t ElapsedMillis() const;
  int64_t ElapsedMicros() const;

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A soft wall-clock budget: algorithms poll Exceeded() at level boundaries
/// and abort cleanly, mirroring the paper's "* 5h" timeout handling.
class Deadline {
 public:
  /// A deadline that never expires.
  Deadline() : budget_seconds_(-1.0) {}

  /// A deadline `budget_seconds` from now. Non-positive means "no limit"
  /// except via the explicit Infinite() factory.
  static Deadline After(double budget_seconds) {
    Deadline d;
    d.budget_seconds_ = budget_seconds;
    return d;
  }
  static Deadline Infinite() { return Deadline(); }

  bool Exceeded() const {
    return budget_seconds_ >= 0.0 && timer_.ElapsedSeconds() > budget_seconds_;
  }

 private:
  WallTimer timer_;
  double budget_seconds_;
};

}  // namespace fastod

#endif  // FASTOD_COMMON_TIMER_H_
