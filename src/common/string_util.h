// Small string helpers shared by the CSV layer and pretty-printers.
#ifndef FASTOD_COMMON_STRING_UTIL_H_
#define FASTOD_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace fastod {

/// Splits `s` on `delim`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Strict integer parse of the whole string; nullopt on any junk.
std::optional<int64_t> ParseInt(std::string_view s);

/// Strict double parse of the whole string; nullopt on any junk.
std::optional<double> ParseDouble(std::string_view s);

}  // namespace fastod

#endif  // FASTOD_COMMON_STRING_UTIL_H_
