#include "common/fault.h"

#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace fastod {
namespace fault {

namespace {

enum class Action { kThrow, kFail, kSleep };

struct PointSchedule {
  Action action = Action::kFail;
  int64_t trip_on_hit = 1;  // 1-based hit number that trips
  int64_t hits = 0;
  // throw/fail fire exactly once; sleep fires on every hit >= trip_on_hit
  // (tripped then only dedups the observability counter).
  bool tripped = false;
};

// Deterministic sub-millisecond latency for hit number `hit` of a
// "sleep" schedule: a Weyl-style hash of the hit index spread over
// [0, 800) microseconds. Long enough to reorder racing scheduler tasks,
// short enough that a 50-seed stress run stays fast under TSan.
std::chrono::microseconds SleepFor(int64_t hit) {
  uint64_t x = static_cast<uint64_t>(hit) * 0x9e3779b97f4a7c15ull;
  x ^= x >> 29;
  return std::chrono::microseconds((x >> 16) % 800);
}

struct Registry {
  std::mutex mutex;
  std::map<std::string, PointSchedule> points;
};

Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

/// "point:action:N" → entry; false on malformed input.
bool ParseEntry(const std::string& entry,
                std::map<std::string, PointSchedule>* out) {
  size_t c1 = entry.find(':');
  if (c1 == std::string::npos || c1 == 0) return false;
  size_t c2 = entry.find(':', c1 + 1);
  if (c2 == std::string::npos) return false;
  std::string point = entry.substr(0, c1);
  std::string action = entry.substr(c1 + 1, c2 - c1 - 1);
  std::string count = entry.substr(c2 + 1);
  PointSchedule schedule;
  if (action == "throw") {
    schedule.action = Action::kThrow;
  } else if (action == "fail") {
    schedule.action = Action::kFail;
  } else if (action == "sleep") {
    schedule.action = Action::kSleep;
  } else {
    return false;
  }
  if (count.empty()) return false;
  char* end = nullptr;
  long long n = std::strtoll(count.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || n < 1) return false;
  schedule.trip_on_hit = n;
  (*out)[std::move(point)] = schedule;
  return true;
}

}  // namespace

std::atomic<bool> g_faults_active{false};

bool CheckSlow(const char* point) {
  Action action;
  int64_t hit = 0;
  bool count_observed;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    auto it = r.points.find(point);
    if (it == r.points.end()) return false;
    PointSchedule& schedule = it->second;
    ++schedule.hits;
    hit = schedule.hits;
    if (schedule.action == Action::kSleep) {
      // Latency faults recur: every hit from trip_on_hit onward stalls.
      if (hit < schedule.trip_on_hit) return false;
      count_observed = !schedule.tripped;  // counter counts points, not naps
      schedule.tripped = true;
    } else {
      if (schedule.tripped || hit != schedule.trip_on_hit) {
        return false;
      }
      schedule.tripped = true;
      count_observed = true;
    }
    action = schedule.action;
  }
  // Outside the registry lock: the metrics registry takes its own.
  if (count_observed && obs::Enabled()) {
    obs::Registry::Global()
        .GetCounter("fastod_fault_observed_total",
                    "Scheduled faults that tripped at their fault point",
                    {{"point", point}})
        ->Inc();
  }
  if (action == Action::kSleep) {
    std::this_thread::sleep_for(SleepFor(hit));
    return false;  // a latency fault never takes the failure path
  }
  if (action == Action::kThrow) throw FaultInjected(point);
  return true;
}

bool SetSchedule(const std::string& spec) {
  std::map<std::string, PointSchedule> parsed;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string entry = spec.substr(pos, comma - pos);
    if (!entry.empty() && !ParseEntry(entry, &parsed)) return false;
    pos = comma + 1;
  }
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.points = std::move(parsed);
  g_faults_active.store(!r.points.empty(), std::memory_order_relaxed);
  return true;
}

void Clear() { (void)SetSchedule(""); }

int64_t Hits(const char* point) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.points.find(point);
  return it == r.points.end() ? 0 : it->second.hits;
}

bool ReloadFromEnv() {
  const char* spec = std::getenv("FASTOD_FAULTS");
  return SetSchedule(spec == nullptr ? "" : spec);
}

namespace {
// Arms FASTOD_FAULTS schedules before main() so whole-process tests
// (CLI smoke runs, the serve binary) can inject without code changes.
const bool g_env_loaded = ReloadFromEnv();
}  // namespace

}  // namespace fault
}  // namespace fastod
