#include "common/task_graph.h"

#include <utility>

#include "common/thread_pool.h"

namespace fastod {

namespace {
// Routes Spawn() calls made from inside a task to the worker's own slot.
// Saved/restored around WorkerLoop so nested graphs (a task running a
// private graph of its own) stay correct.
thread_local const TaskGraph* tls_graph = nullptr;
thread_local int tls_slot = 0;
}  // namespace

TaskGraph::TaskGraph(ThreadPool* pool) : pool_(pool) {
  const int parties =
      pool_ != nullptr ? pool_->num_threads() + 1 : 1;
  slots_.reserve(parties);
  for (int i = 0; i < parties; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
}

void TaskGraph::Spawn(std::function<void()> task) {
  int slot;
  if (tls_graph == this) {
    slot = tls_slot;
  } else {
    slot = static_cast<int>(round_robin_.fetch_add(
                                1, std::memory_order_relaxed) %
                            slots_.size());
  }
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  spawned_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(slots_[slot]->mutex);
    slots_[slot]->deque.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_release);
  // Bridge the sleep mutex so a worker between its predicate check and
  // its block cannot miss this wakeup.
  { std::lock_guard<std::mutex> lock(mutex_); }
  wake_.notify_one();
}

std::function<void()> TaskGraph::Pop(int slot) {
  {
    Slot& own = *slots_[slot];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.deque.empty()) {
      std::function<void()> task = std::move(own.deque.back());
      own.deque.pop_back();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return task;
    }
  }
  const int n = static_cast<int>(slots_.size());
  for (int k = 1; k < n; ++k) {
    Slot& victim = *slots_[(slot + k) % n];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.deque.empty()) {
      std::function<void()> task = std::move(victim.deque.front());
      victim.deque.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      stolen_.fetch_add(1, std::memory_order_relaxed);
      return task;
    }
  }
  return nullptr;
}

void TaskGraph::WorkerLoop(int slot) {
  const TaskGraph* prev_graph = tls_graph;
  const int prev_slot = tls_slot;
  tls_graph = this;
  tls_slot = slot;
  while (true) {
    std::function<void()> task = Pop(slot);
    if (task) {
      if (!abandoned_.load(std::memory_order_relaxed)) {
        try {
          task();
          executed_.fetch_add(1, std::memory_order_relaxed);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mutex_);
          if (!abandoned_.load(std::memory_order_relaxed)) {
            first_error_ = std::current_exception();
            abandoned_.store(true, std::memory_order_relaxed);
          }
        }
      }
      if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Graph drained: release every sleeper so Run() can return.
        { std::lock_guard<std::mutex> lock(mutex_); }
        wake_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(mutex_);
    if (outstanding_.load(std::memory_order_acquire) == 0) break;
    wake_.wait(lock, [&] {
      return queued_.load(std::memory_order_acquire) > 0 ||
             outstanding_.load(std::memory_order_acquire) == 0;
    });
    if (outstanding_.load(std::memory_order_acquire) == 0) break;
  }
  tls_graph = prev_graph;
  tls_slot = prev_slot;
}

void TaskGraph::Run() {
  const int parties = static_cast<int>(slots_.size());
  if (pool_ != nullptr && parties > 1) {
    // Every party claims a distinct slot; ParallelFor makes the caller
    // participate, so all `parties` loops run even if the pool is busy
    // or already stopped (the caller then drains the graph alone — the
    // no-deadlock guarantee tests/task_graph_test.cc pins).
    std::atomic<int> next_slot{0};
    pool_->ParallelFor(parties, [&](int64_t) {
      WorkerLoop(next_slot.fetch_add(1, std::memory_order_relaxed) %
                 parties);
    });
  } else {
    WorkerLoop(0);
  }
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    error = std::exchange(first_error_, nullptr);
    abandoned_.store(false, std::memory_order_relaxed);
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace fastod
