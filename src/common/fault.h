// Deterministic fault injection for robustness tests.
//
// Production code marks the places where the outside world can fail with
// named fault points:
//
//   if (FASTOD_FAULT_POINT("csv.read")) {
//     return Status::IoError("injected fault: csv.read");
//   }
//
// A test-only schedule — the FASTOD_FAULTS environment variable, or
// fault::SetSchedule() from test code — trips a point on its Nth hit:
//
//   FASTOD_FAULTS="csv.read:throw:3,httpd.write:fail:1"
//
// Three actions exist. "throw" raises fault::FaultInjected from inside
// the fault point (exercising the exception containment at worker and
// handler boundaries); "fail" makes FASTOD_FAULT_POINT return true, and
// the site degrades through its own coded-error path (a Status, a false
// write, a refused insert). Sites with no coded failure path may ignore
// the return value and are then only reachable via "throw". "sleep" is
// a latency fault: from the Nth hit onward, every hit stalls the calling
// thread for a short pseudo-random duration derived deterministically
// from the hit index — it never trips the site's failure path. The
// scheduler stress tests use it to randomize task completion order at
// "task_graph.task" and then assert output is order-independent
// (tests/task_graph_test.cc).
//
// With no schedule installed — every production run — a fault point is
// one relaxed atomic load and a never-taken branch. The registry itself
// is mutex-guarded, but that slow path only runs while a schedule is
// active (tests).
#ifndef FASTOD_COMMON_FAULT_H_
#define FASTOD_COMMON_FAULT_H_

#include <atomic>
#include <stdexcept>
#include <string>

namespace fastod {
namespace fault {

/// The exception a "throw" schedule raises from inside a fault point.
class FaultInjected : public std::runtime_error {
 public:
  explicit FaultInjected(const std::string& point)
      : std::runtime_error("injected fault at '" + point + "'"),
        point_(point) {}
  const std::string& point() const { return point_; }

 private:
  std::string point_;
};

/// True while any schedule is active. Internal to the Check fast path.
extern std::atomic<bool> g_faults_active;

/// Slow path: records the hit and applies the scheduled action, throwing
/// FaultInjected for "throw" and returning true for "fail".
bool CheckSlow(const char* point);

/// The fault-point implementation (use FASTOD_FAULT_POINT instead).
inline bool Check(const char* point) {
  if (!g_faults_active.load(std::memory_order_relaxed)) return false;
  return CheckSlow(point);
}

/// Installs a schedule from `spec` ("point:action:N" comma-separated;
/// action is "throw", "fail", or "sleep"; N is the 1-based hit that
/// trips — the FASTOD_FAULTS syntax). "throw"/"fail" fire exactly once,
/// on hit N; "sleep" fires on every hit from N onward. Replaces any
/// previous schedule and resets all hit counters. Returns false (and
/// installs nothing) on a malformed spec. An empty spec clears the
/// schedule.
bool SetSchedule(const std::string& spec);

/// Removes the active schedule and resets hit counters.
void Clear();

/// Hits observed at `point` since the schedule was installed (0 with no
/// schedule: the fast path does not count). For test assertions.
int64_t Hits(const char* point);

/// Re-reads FASTOD_FAULTS from the environment (also done once at
/// process start). Returns false on a malformed value.
bool ReloadFromEnv();

}  // namespace fault
}  // namespace fastod

/// Evaluates to true when a "fail" is scheduled for this hit of `point`;
/// throws fault::FaultInjected when a "throw" is scheduled; false (a
/// single predictable branch) otherwise.
#define FASTOD_FAULT_POINT(point) ::fastod::fault::Check(point)

#endif  // FASTOD_COMMON_FAULT_H_
