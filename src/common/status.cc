#include "common/status.h"

namespace fastod {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace fastod
