// Cooperative cancellation and progress reporting for long discovery runs.
//
// An ExecutionControl is shared between a caller (typically through
// api/algorithm.h) and a running engine: the caller flips the cancel flag
// from another thread, the engine polls it at level boundaries — the same
// places it polls its Deadline — and aborts cleanly with partial results.
// Progress flows the other way: engines report a coarse [0, 1] fraction
// (lattice level over attribute count) that frontends may display.
#ifndef FASTOD_COMMON_CANCELLATION_H_
#define FASTOD_COMMON_CANCELLATION_H_

#include <atomic>

namespace fastod {

class ExecutionControl {
 public:
  ExecutionControl() = default;
  ExecutionControl(const ExecutionControl&) = delete;
  ExecutionControl& operator=(const ExecutionControl&) = delete;

  /// Asks the running algorithm to stop at its next check point. Safe to
  /// call from any thread, any number of times.
  void RequestCancel() { cancel_.store(true, std::memory_order_relaxed); }

  bool CancelRequested() const {
    return cancel_.load(std::memory_order_relaxed);
  }

  /// Reset for reuse across runs.
  void Reset() {
    cancel_.store(false, std::memory_order_relaxed);
    progress_.store(0.0, std::memory_order_relaxed);
  }

  /// Engines report completion as a fraction in [0, 1]; values outside the
  /// range are clamped.
  void ReportProgress(double fraction) {
    if (fraction < 0.0) fraction = 0.0;
    if (fraction > 1.0) fraction = 1.0;
    progress_.store(fraction, std::memory_order_relaxed);
  }

  double Progress() const { return progress_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancel_{false};
  std::atomic<double> progress_{0.0};
};

}  // namespace fastod

#endif  // FASTOD_COMMON_CANCELLATION_H_
