// Cooperative cancellation, deadlines, and progress reporting for long
// discovery runs.
//
// An ExecutionControl is shared between a caller (typically through
// api/algorithm.h) and a running engine: the caller flips the cancel flag
// (or arms a monotonic deadline) from another thread, the engine polls
// StopRequested() at level boundaries — one check covers both stop
// reasons — and aborts cleanly with partial results. Progress flows the
// other way: engines report a coarse [0, 1] fraction (lattice level over
// attribute count) that frontends may display.
//
// Cancellation and deadline expiry are deliberately distinguishable
// after the stop: cancellation is a clean early exit (partial results
// kept), while a passed deadline is an error the session layer reports
// as kDeadlineExceeded.
#ifndef FASTOD_COMMON_CANCELLATION_H_
#define FASTOD_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace fastod {

class ExecutionControl {
 public:
  ExecutionControl() = default;
  ExecutionControl(const ExecutionControl&) = delete;
  ExecutionControl& operator=(const ExecutionControl&) = delete;

  /// Asks the running algorithm to stop at its next check point. Safe to
  /// call from any thread, any number of times.
  void RequestCancel() { cancel_.store(true, std::memory_order_relaxed); }

  bool CancelRequested() const {
    return cancel_.load(std::memory_order_relaxed);
  }

  /// Arms a monotonic deadline `millis` from now (non-positive disarms).
  /// Engines observe it through StopRequested()/DeadlineExceeded() at the
  /// same safepoints as cancellation.
  void SetDeadlineAfterMillis(int64_t millis) {
    if (millis <= 0) {
      deadline_ns_.store(0, std::memory_order_relaxed);
      return;
    }
    deadline_ns_.store(NowNanos() + millis * 1'000'000,
                       std::memory_order_relaxed);
  }

  bool HasDeadline() const {
    return deadline_ns_.load(std::memory_order_relaxed) != 0;
  }

  bool DeadlineExceeded() const {
    int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    return deadline != 0 && NowNanos() > deadline;
  }

  /// One poll covering both stop reasons; engines check this wherever
  /// they used to check CancelRequested().
  bool StopRequested() const {
    return CancelRequested() || DeadlineExceeded();
  }

  /// Reset for reuse across runs.
  void Reset() {
    cancel_.store(false, std::memory_order_relaxed);
    deadline_ns_.store(0, std::memory_order_relaxed);
    progress_.store(0.0, std::memory_order_relaxed);
  }

  /// Engines report completion as a fraction in [0, 1]; values outside the
  /// range are clamped.
  void ReportProgress(double fraction) {
    if (fraction < 0.0) fraction = 0.0;
    if (fraction > 1.0) fraction = 1.0;
    progress_.store(fraction, std::memory_order_relaxed);
  }

  double Progress() const { return progress_.load(std::memory_order_relaxed); }

 private:
  static int64_t NowNanos() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  std::atomic<bool> cancel_{false};
  // steady_clock nanos of the armed deadline; 0 = none. Relaxed is
  // enough: a late observation only delays the stop by one poll.
  std::atomic<int64_t> deadline_ns_{0};
  std::atomic<double> progress_{0.0};
};

}  // namespace fastod

#endif  // FASTOD_COMMON_CANCELLATION_H_
