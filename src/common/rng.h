// Deterministic pseudo-random number generation for the synthetic dataset
// generators and property tests. Wraps a fixed algorithm (splitmix64 +
// xoshiro-style mixing) so that generated datasets are bit-identical across
// platforms and standard-library versions — std::mt19937 would also be
// deterministic, but distributions like std::uniform_int_distribution are
// not specified and vary by implementation.
#ifndef FASTOD_COMMON_RNG_H_
#define FASTOD_COMMON_RNG_H_

#include <cstdint>

#include "common/macros.h"

namespace fastod {

/// Deterministic 64-bit PRNG with convenience samplers. Copyable; copies
/// continue the same stream independently.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ULL) {
    // Warm up so that small consecutive seeds do not produce correlated
    // leading outputs.
    Next64();
    Next64();
  }

  /// Uniform 64-bit value (splitmix64 step).
  uint64_t Next64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be positive.
  int64_t Uniform(int64_t bound) {
    FASTOD_DCHECK(bound > 0);
    // Modulo bias is negligible for bound << 2^64 and irrelevant for
    // synthetic-data purposes.
    return static_cast<int64_t>(Next64() % static_cast<uint64_t>(bound));
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    FASTOD_DCHECK(lo <= hi);
    return lo + Uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace fastod

#endif  // FASTOD_COMMON_RNG_H_
