// Status and Result<T>: error propagation for fallible operations.
//
// The library never throws across its public API. Operations that can fail
// on user input (CSV parsing, schema lookups, option validation) return
// Status or Result<T>; pure in-memory algorithms on validated inputs return
// values directly.
#ifndef FASTOD_COMMON_STATUS_H_
#define FASTOD_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/macros.h"

namespace fastod {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kResourceExhausted,
  kInternal,  // unexpected failure inside the library (e.g. engine threw)
  kDeadlineExceeded,  // the run's wall-clock deadline passed (timeout-ms)
  kUnavailable,       // transient overload/shutdown; retry later
};

/// "OK", "InvalidArgument", ... — the stable spelling used in ToString()
/// and machine-readable error payloads (e.g. the HTTP API's "code"
/// field).
const char* StatusCodeName(StatusCode code);

/// Lightweight status object: an error code plus a human-readable message.
/// A default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> carries either a value or an error Status.
template <typename T>
class Result {
 public:
  // Implicit construction from a value or an error keeps call sites terse:
  //   Result<Table> Load() { if (bad) return Status::IoError(...); return t; }
  Result(T value) : value_(std::move(value)) {}          // NOLINT
  Result(Status status) : status_(std::move(status)) {   // NOLINT
    FASTOD_CHECK(!status_.ok());  // OK statuses must carry a value.
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    FASTOD_CHECK(ok());
    return *value_;
  }
  T& value() & {
    FASTOD_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    FASTOD_CHECK(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace fastod

#endif  // FASTOD_COMMON_STATUS_H_
