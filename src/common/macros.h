// Internal assertion and utility macros.
//
// The library reports user-facing errors through fastod::Status (see
// common/status.h); these macros are reserved for internal invariants whose
// violation indicates a bug in the library itself, never bad user input.
#ifndef FASTOD_COMMON_MACROS_H_
#define FASTOD_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// FASTOD_CHECK(cond): always-on invariant check. Aborts with a message on
// failure. Used on cold paths (setup, level transitions).
#define FASTOD_CHECK(cond)                                                 \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "FASTOD_CHECK failed: %s at %s:%d\n", #cond,    \
                   __FILE__, __LINE__);                                    \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

// FASTOD_DCHECK(cond): debug-only invariant check for hot paths (partition
// products, per-tuple scans). Compiled out in release builds.
#ifndef NDEBUG
#define FASTOD_DCHECK(cond) FASTOD_CHECK(cond)
#else
#define FASTOD_DCHECK(cond) \
  do {                      \
  } while (0)
#endif

#endif  // FASTOD_COMMON_MACROS_H_
