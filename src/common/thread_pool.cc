#include "common/thread_pool.h"

#include <algorithm>
#include <cstdio>
#include <string>

#include "common/macros.h"

#if defined(__linux__)
#include <pthread.h>
#endif

namespace fastod {

namespace {

// Best effort: thread names are observability, never correctness.
void NameCurrentThread(const std::string& name) {
#if defined(__linux__)
  char truncated[16];  // pthread_setname_np limit, including the NUL
  std::snprintf(truncated, sizeof(truncated), "%s", name.c_str());
  (void)pthread_setname_np(pthread_self(), truncated);
#else
  (void)name;
#endif
}

}  // namespace

ThreadPool::ThreadPool(int num_threads, const char* name_prefix) {
  num_threads = std::max(1, num_threads);
  workers_.reserve(num_threads);
  const std::string prefix(name_prefix == nullptr ? "fastod-wkr"
                                                  : name_prefix);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, prefix, i] {
      NameCurrentThread(prefix + "-" + std::to_string(i));
      WorkerMain();
    });
  }
}

ThreadPool::~ThreadPool() { Stop(); }

void ThreadPool::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return;  // idempotent; workers already joined(ing)
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::WorkerMain() {
  uint64_t seen_generation = 0;
  while (true) {
    ForLoop* loop = nullptr;
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] {
        return shutdown_ || !tasks_.empty() ||
               (active_ != nullptr && generation_ != seen_generation);
      });
      if (!tasks_.empty()) {
        // Tasks take priority: a pending session should not wait behind
        // loop iterations other workers already cover.
        task = std::move(tasks_.front());
        tasks_.pop_front();
      } else if (shutdown_) {
        return;  // queue drained; safe to exit
      } else {
        seen_generation = generation_;
        loop = active_;
        ++loop->refs;  // the loop object stays alive while refs > 0
      }
    }
    if (task) {
      // Worker boundary: a throwing task must not unwind into the worker
      // loop (std::thread would terminate the process). Tasks with a
      // failure channel (DiscoverySession::Run) convert exceptions to
      // Status themselves; this is the backstop for ones that don't.
      try {
        task();
      } catch (...) {
      }
      continue;
    }
    DrainLoop(loop);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --loop->refs;
    }
    work_done_.notify_all();
  }
}

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // A submission racing (or trailing) Stop() is refused, not crashed
    // on and not silently dropped: the caller learns the pool is gone.
    if (shutdown_) return false;
    tasks_.push_back(std::move(task));
  }
  work_ready_.notify_one();
  return true;
}

void ThreadPool::DrainLoop(ForLoop* loop) {
  while (true) {
    int64_t begin = loop->next.fetch_add(loop->chunk);
    if (begin >= loop->count) break;
    int64_t end = std::min(begin + loop->chunk, loop->count);
    for (int64_t i = begin; i < end; ++i) {
      (*loop->body)(i);
    }
    loop->done.fetch_add(end - begin);
  }
}

void ThreadPool::ParallelFor(int64_t count,
                             const std::function<void(int64_t)>& body) {
  if (count <= 0) return;
  ForLoop loop;
  loop.count = count;
  // Chunks sized for ~8 claims per worker to balance scheduling overhead
  // against skew in per-node costs.
  loop.chunk = std::max<int64_t>(
      1, count / (static_cast<int64_t>(workers_.size() + 1) * 8));
  loop.body = &body;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    active_ = &loop;
    ++generation_;
  }
  work_ready_.notify_all();
  DrainLoop(&loop);  // the caller works too
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // The loop may be destroyed only when every iteration has run AND no
    // worker still holds a reference to it.
    work_done_.wait(lock, [&] {
      return loop.done.load() == loop.count && loop.refs == 0;
    });
    active_ = nullptr;
  }
}

}  // namespace fastod
