#include "common/string_util.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace fastod {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         (s[begin] == ' ' || s[begin] == '\t' || s[begin] == '\r' ||
          s[begin] == '\n')) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         (s[end - 1] == ' ' || s[end - 1] == '\t' || s[end - 1] == '\r' ||
          s[end - 1] == '\n')) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::optional<int64_t> ParseInt(std::string_view s) {
  s = Trim(s);
  if (s.empty() || s.size() > 20) return std::nullopt;
  char buf[24];
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(buf, &end, 10);
  if (errno != 0 || end != buf + s.size()) return std::nullopt;
  return static_cast<int64_t>(v);
}

std::optional<double> ParseDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty() || s.size() > 48) return std::nullopt;
  char buf[52];
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(buf, &end);
  if (errno != 0 || end != buf + s.size()) return std::nullopt;
  return v;
}

}  // namespace fastod
