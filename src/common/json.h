// Minimal JSON reading and writing shared by the frontends.
//
// The library's machine-readable outputs (report/report.h, the C ABI's
// result strings, the HTTP server's responses) are all JSON, and the
// server additionally has to *parse* request bodies. Instead of a
// third-party dependency, this header provides the two small pieces every
// frontend needs:
//
//   * JsonEscape / JsonWriter — append-only construction of valid JSON
//     text. The writer tracks nesting and comma placement so call sites
//     read like the document they produce:
//
//       JsonWriter w;
//       w.BeginObject().Key("id").Int(7).Key("tags").BeginArray()
//        .String("a").String("b").EndArray().EndObject();
//       w.str()  ==  {"id": 7, "tags": ["a", "b"]}
//
//   * JsonValue / ParseJson — a tiny recursive-descent parser into a DOM
//     of the six JSON types. Numbers are stored as double (adequate for
//     every integer the API traffics in); objects preserve insertion
//     order and reject duplicate keys. Depth is bounded so hostile
//     request bodies cannot overflow the stack.
#ifndef FASTOD_COMMON_JSON_H_
#define FASTOD_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace fastod {

/// Escapes a string for inclusion inside JSON double quotes.
std::string JsonEscape(const std::string& s);

/// Append-only JSON text builder. Misuse (e.g. a value where a key is
/// required) is a programming error and fires FASTOD_CHECK in debug use;
/// the writer never produces malformed output from well-ordered calls.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Object member key; must be followed by exactly one value.
  JsonWriter& Key(const std::string& key);

  JsonWriter& String(const std::string& value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();
  /// Splices pre-rendered JSON (e.g. a report string) as one value.
  JsonWriter& Raw(const std::string& json);

  const std::string& str() const { return out_; }

 private:
  void BeforeValue();

  std::string out_;
  // One frame per open container: '{' or '[', plus whether a value has
  // been written at this level (comma placement) and, for objects,
  // whether a key is pending.
  struct Frame {
    char kind;
    bool has_value = false;
    bool key_pending = false;
  };
  std::vector<Frame> stack_;
};

/// One parsed JSON value.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  /// The number as an integer, saturating: NaN → 0, values beyond the
  /// exactly-representable range clamp to ±2^53. A plain static_cast of
  /// an out-of-range double is undefined behavior, and the parser accepts
  /// any double a hostile request body can spell (1e999 → +inf).
  int64_t int_value() const;
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& object_items()
      const {
    return object_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Renders a value back to compact JSON text (for error messages and
  /// round-trip tests).
  std::string Dump() const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses one JSON document. Trailing non-whitespace, duplicate object
/// keys, and nesting beyond 64 levels are InvalidArgument errors.
Result<JsonValue> ParseJson(const std::string& text);

}  // namespace fastod

#endif  // FASTOD_COMMON_JSON_H_
