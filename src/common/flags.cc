#include "common/flags.h"

#include "common/string_util.h"

namespace fastod {

void FlagSet::AddString(const std::string& name, std::string* value,
                        const std::string& help) {
  flags_.push_back(Flag{name, Type::kString, value, help, *value});
}

void FlagSet::AddInt(const std::string& name, int64_t* value,
                     const std::string& help) {
  flags_.push_back(
      Flag{name, Type::kInt, value, help, std::to_string(*value)});
}

void FlagSet::AddDouble(const std::string& name, double* value,
                        const std::string& help) {
  flags_.push_back(
      Flag{name, Type::kDouble, value, help, std::to_string(*value)});
}

void FlagSet::AddBool(const std::string& name, bool* value,
                      const std::string& help) {
  flags_.push_back(
      Flag{name, Type::kBool, value, help, *value ? "true" : "false"});
}

const FlagSet::Flag* FlagSet::Find(const std::string& name) const {
  for (const Flag& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

Status FlagSet::Apply(const Flag& flag, const std::string& value) {
  switch (flag.type) {
    case Type::kString:
      *static_cast<std::string*>(flag.target) = value;
      return Status::Ok();
    case Type::kInt: {
      auto parsed = ParseInt(value);
      if (!parsed) {
        return Status::InvalidArgument("--" + flag.name +
                                       " expects an integer, got '" + value +
                                       "'");
      }
      *static_cast<int64_t*>(flag.target) = *parsed;
      return Status::Ok();
    }
    case Type::kDouble: {
      auto parsed = ParseDouble(value);
      if (!parsed) {
        return Status::InvalidArgument("--" + flag.name +
                                       " expects a number, got '" + value +
                                       "'");
      }
      *static_cast<double*>(flag.target) = *parsed;
      return Status::Ok();
    }
    case Type::kBool: {
      if (value == "" || value == "true" || value == "1") {
        *static_cast<bool*>(flag.target) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(flag.target) = false;
      } else {
        return Status::InvalidArgument("--" + flag.name +
                                       " expects true/false, got '" + value +
                                       "'");
      }
      return Status::Ok();
    }
  }
  return Status::InvalidArgument("unhandled flag type");
}

Status FlagSet::Parse(const std::vector<std::string>& args) {
  positional_.clear();
  for (const std::string& arg : args) {
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string name = body;
    std::string value;
    size_t eq = body.find('=');
    bool has_value = eq != std::string::npos;
    if (has_value) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
    }
    const Flag* flag = Find(name);
    if (flag == nullptr) {
      return Status::InvalidArgument("unknown flag --" + name);
    }
    if (!has_value && flag->type != Type::kBool) {
      return Status::InvalidArgument("--" + name + " requires a value");
    }
    Status s = Apply(*flag, value);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

std::string FlagSet::HelpText() const {
  std::string out;
  for (const Flag& f : flags_) {
    out += "  --" + f.name + " (default: " + f.default_repr + ")\n      " +
           f.help + "\n";
  }
  return out;
}

}  // namespace fastod
