#include "common/timer.h"

namespace fastod {

double WallTimer::ElapsedSeconds() const {
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

int64_t WallTimer::ElapsedMillis() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               start_)
      .count();
}

int64_t WallTimer::ElapsedMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               start_)
      .count();
}

}  // namespace fastod
