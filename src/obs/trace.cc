#include "obs/trace.h"

#include "common/json.h"

namespace fastod {
namespace obs {

void TraceRecorder::Span::End() {
  if (recorder_ == nullptr) return;
  recorder_->RecordSpan(name_, start_, recorder_->Now() - start_);
  recorder_ = nullptr;
}

void TraceRecorder::RecordSpan(const std::string& name, double start_seconds,
                               double duration_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back(TraceSpan{name, start_seconds, duration_seconds});
}

void TraceRecorder::SetEngineStats(const EngineStats& stats) {
  std::lock_guard<std::mutex> lock(mutex_);
  engine_stats_ = stats;
  has_engine_stats_ = true;
}

bool TraceRecorder::has_engine_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return has_engine_stats_;
}

std::string TraceRecorder::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonWriter w;
  w.BeginObject();
  w.Key("spans").BeginArray();
  for (const TraceSpan& span : spans_) {
    w.BeginObject()
        .Key("name").String(span.name)
        .Key("start_ms").Double(span.start_seconds * 1e3)
        .Key("duration_ms").Double(span.duration_seconds * 1e3)
        .EndObject();
  }
  w.EndArray();
  w.Key("engine");
  if (!has_engine_stats_) {
    w.Null();
  } else {
    const EngineStats& s = engine_stats_;
    w.BeginObject()
        .Key("levels_processed").Int(s.levels_processed)
        .Key("nodes_visited").Int(s.nodes_visited)
        .Key("nodes_pruned").Int(s.nodes_pruned)
        .Key("constancy_checks").Int(s.constancy_checks)
        .Key("swap_checks").Int(s.swap_checks)
        .Key("key_prune_hits").Int(s.key_prune_hits)
        .Key("candidates_checked").Int(s.candidates_checked)
        .Key("candidates_pruned").Int(s.candidates_pruned)
        .Key("ods_emitted").Int(s.ods_emitted)
        .Key("partition_cache_gets").Int(s.partition_cache_gets)
        .Key("partition_cache_puts").Int(s.partition_cache_puts)
        .Key("tasks_ready").Int(s.tasks_ready)
        .Key("tasks_spawned").Int(s.tasks_spawned)
        .Key("tasks_stolen").Int(s.tasks_stolen);
    w.Key("levels").BeginArray();
    for (const LevelStats& level : s.levels) {
      w.BeginObject()
          .Key("level").Int(level.level)
          .Key("nodes").Int(level.nodes)
          .Key("nodes_pruned").Int(level.nodes_pruned)
          .Key("constancy_checks").Int(level.constancy_checks)
          .Key("swap_checks").Int(level.swap_checks)
          .Key("key_prune_hits").Int(level.key_prune_hits)
          .Key("ods_found").Int(level.ods_found)
          .Key("seconds").Double(level.seconds)
          .Key("occupancy").Double(level.occupancy)
          .EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  return w.str();
}

}  // namespace obs
}  // namespace fastod
