// Per-session trace spans and engine-level search telemetry.
//
// A TraceRecorder collects two kinds of evidence about one discovery
// session:
//
//   * timed spans — named phases (csv.parse, encode, execute, level[k])
//     with start offsets relative to the recorder's creation, recorded by
//     the code that runs the phase;
//   * engine stats — the lattice-search counters every engine already
//     accumulates internally (nodes visited/pruned per level, swap/split
//     validation calls, partition-cache traffic, ODs emitted), copied out
//     once at the end of Execute() through Algorithm::stats(), so the
//     search hot path pays nothing beyond the counters it always kept.
//
// The recorder is written by the session's worker thread and read (as
// JSON) by HTTP scrape threads, so all access is mutex-guarded; none of
// it is on a per-node path.
#ifndef FASTOD_OBS_TRACE_H_
#define FASTOD_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/timer.h"

namespace fastod {
namespace obs {

/// Lattice counters for one level of the search (fastod family; other
/// engines leave per-level detail empty and fill totals only).
struct LevelStats {
  int level = 0;
  int64_t nodes = 0;             // lattice nodes visited at this level
  int64_t nodes_pruned = 0;      // removed afterwards (Lemma 11)
  int64_t constancy_checks = 0;  // split/FD-side validations
  int64_t swap_checks = 0;       // swap/OCD-side validations
  int64_t key_prune_hits = 0;    // validations skipped via Lemmas 12-13
  int64_t ods_found = 0;
  double seconds = 0.0;
  /// Worker-busy fraction while the task graph processed this level,
  /// in [0, 1]; 0 for serial runs and engines without a task graph.
  double occupancy = 0.0;
};

/// Engine totals for one Execute(). Engines fill the counters they
/// track; absent notions stay zero (e.g. TANE has no swap checks).
struct EngineStats {
  int levels_processed = 0;
  int64_t nodes_visited = 0;
  int64_t nodes_pruned = 0;
  int64_t constancy_checks = 0;
  int64_t swap_checks = 0;
  int64_t key_prune_hits = 0;
  int64_t candidates_checked = 0;  // ORDER-style candidate engines
  int64_t candidates_pruned = 0;
  int64_t ods_emitted = 0;
  int64_t partition_cache_gets = 0;
  int64_t partition_cache_puts = 0;
  /// Task-graph scheduling counters (num_threads > 1 runs of fastod /
  /// approximate / tane; zero otherwise). ready counts nodes whose
  /// dependencies completed, spawned counts tasks handed to the
  /// scheduler, stolen counts cross-worker deque steals.
  int64_t tasks_ready = 0;
  int64_t tasks_spawned = 0;
  int64_t tasks_stolen = 0;
  std::vector<LevelStats> levels;
};

/// One timed phase. Offsets are seconds since the recorder's creation.
struct TraceSpan {
  std::string name;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
};

/// Collects spans + engine stats for one session and renders them as
/// JSON. Thread-safe; create one per session (or per CLI run).
class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Seconds elapsed since the recorder was created; span starts are
  /// expressed on this clock.
  double Now() const { return epoch_.ElapsedSeconds(); }

  void RecordSpan(const std::string& name, double start_seconds,
                  double duration_seconds);

  /// RAII span: records `name` from construction to destruction (or an
  /// explicit End()). Returned by value from StartSpan.
  class Span {
   public:
    Span(Span&& other) noexcept
        : recorder_(other.recorder_),
          name_(std::move(other.name_)),
          start_(other.start_) {
      other.recorder_ = nullptr;
    }
    ~Span() { End(); }
    void End();

   private:
    friend class TraceRecorder;
    Span(TraceRecorder* recorder, std::string name)
        : recorder_(recorder),
          name_(std::move(name)),
          start_(recorder == nullptr ? 0.0 : recorder->Now()) {}

    TraceRecorder* recorder_;  // null once ended/moved-from
    std::string name_;
    double start_;
  };
  Span StartSpan(std::string name) { return Span(this, std::move(name)); }

  void SetEngineStats(const EngineStats& stats);
  bool has_engine_stats() const;

  /// {"spans":[{"name","start_ms","duration_ms"}...],
  ///  "engine":{totals..., "levels":[...]}}  ("engine" is null until
  /// SetEngineStats).
  std::string ToJson() const;

 private:
  WallTimer epoch_;
  mutable std::mutex mutex_;
  std::vector<TraceSpan> spans_;        // guarded by mutex_
  EngineStats engine_stats_;            // guarded by mutex_
  bool has_engine_stats_ = false;       // guarded by mutex_
};

}  // namespace obs
}  // namespace fastod

#endif  // FASTOD_OBS_TRACE_H_
