#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/macros.h"

namespace fastod {
namespace obs {

namespace {

std::atomic<int> g_enabled{-1};  // -1 = not yet read from environment

bool ReadEnabledFromEnv() {
  const char* value = std::getenv("FASTOD_METRICS");
  if (value == nullptr) return true;
  return std::strcmp(value, "off") != 0 && std::strcmp(value, "0") != 0 &&
         std::strcmp(value, "false") != 0;
}

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
              c == ':' || (i > 0 && c >= '0' && c <= '9');
    if (!ok) return false;
  }
  return true;
}

bool ValidLabelName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
              (i > 0 && c >= '0' && c <= '9');
    if (!ok) return false;
  }
  return true;
}

// Escapes a HELP line: backslash and newline (Prometheus text format).
void AppendHelpEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    if (c == '\\') {
      *out += "\\\\";
    } else if (c == '\n') {
      *out += "\\n";
    } else {
      *out += c;
    }
  }
}

// Escapes a label value: backslash, double quote, newline.
void AppendLabelEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    if (c == '\\') {
      *out += "\\\\";
    } else if (c == '"') {
      *out += "\\\"";
    } else if (c == '\n') {
      *out += "\\n";
    } else {
      *out += c;
    }
  }
}

void AppendDouble(double value, std::string* out) {
  if (std::isinf(value)) {
    *out += value > 0 ? "+Inf" : "-Inf";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  *out += buf;
}

// Renders `{k="v",...}` (or nothing for an empty label set), with
// `extra` appended last when non-null (the histogram `le` label).
void AppendLabels(const Labels& labels, const char* extra_name,
                  const std::string* extra_value, std::string* out) {
  if (labels.empty() && extra_value == nullptr) return;
  *out += '{';
  bool first = true;
  for (const auto& kv : labels) {
    if (!first) *out += ',';
    first = false;
    *out += kv.first;
    *out += "=\"";
    AppendLabelEscaped(kv.second, out);
    *out += '"';
  }
  if (extra_value != nullptr) {
    if (!first) *out += ',';
    *out += extra_name;
    *out += "=\"";
    AppendLabelEscaped(*extra_value, out);
    *out += '"';
  }
  *out += '}';
}

}  // namespace

bool Enabled() {
  int state = g_enabled.load(std::memory_order_relaxed);
  if (state < 0) {
    state = ReadEnabledFromEnv() ? 1 : 0;
    g_enabled.store(state, std::memory_order_relaxed);
  }
  return state != 0;
}

void SetEnabled(bool enabled) {
  g_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<int64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i + 1 < bounds_.size(); ++i) {
    FASTOD_CHECK(bounds_[i] < bounds_[i + 1]);
  }
  for (double b : bounds_) FASTOD_CHECK(std::isfinite(b));
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double value) {
  // First bucket whose upper bound contains the value (`le` is
  // inclusive); past the last finite bound falls into the implicit
  // +Inf bucket.
  size_t i = std::lower_bound(bounds_.begin(), bounds_.end(), value) -
             bounds_.begin();
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
}

int64_t Histogram::BucketCount(size_t i) const {
  FASTOD_CHECK(i <= bounds_.size());
  return buckets_[i].load(std::memory_order_relaxed);
}

std::vector<double> LatencyBucketsSeconds() {
  return {0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03,
          0.1,    0.3,    1.0,   3.0,   10.0, 60.0};
}

std::vector<double> SizeBucketsBytes() {
  return {1024.0,      8192.0,      65536.0,      524288.0,
          4194304.0,   33554432.0,  268435456.0,  1073741824.0};
}

Registry& Registry::Global() {
  static Registry* global = new Registry();
  return *global;
}

Registry::Family* Registry::GetFamily(const std::string& name,
                                      const std::string& help, Type type) {
  FASTOD_CHECK(ValidMetricName(name));
  for (auto& family : families_) {
    if (family->name == name) {
      FASTOD_CHECK(family->type == type);  // one type per family name
      return family.get();
    }
  }
  families_.push_back(std::unique_ptr<Family>(new Family()));
  Family* family = families_.back().get();
  family->name = name;
  family->help = help;
  family->type = type;
  return family;
}

Registry::Series* Registry::GetSeries(Family* family, Labels labels) {
  std::sort(labels.begin(), labels.end());
  for (const auto& kv : labels) FASTOD_CHECK(ValidLabelName(kv.first));
  for (auto& series : family->series) {
    if (series.labels == labels) return &series;
  }
  family->series.emplace_back();
  Series* series = &family->series.back();
  series->labels = std::move(labels);
  return series;
}

Counter* Registry::GetCounter(const std::string& name,
                              const std::string& help, Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family* family = GetFamily(name, help, Type::kCounter);
  Series* series = GetSeries(family, std::move(labels));
  if (!series->counter) series->counter.reset(new Counter());
  return series->counter.get();
}

Gauge* Registry::GetGauge(const std::string& name, const std::string& help,
                          Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family* family = GetFamily(name, help, Type::kGauge);
  Series* series = GetSeries(family, std::move(labels));
  if (!series->gauge) series->gauge.reset(new Gauge());
  return series->gauge.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const std::string& help,
                                  std::vector<double> bounds,
                                  Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family* family = GetFamily(name, help, Type::kHistogram);
  if (family->series.empty() && family->bounds.empty()) {
    family->bounds = std::move(bounds);
  }
  Series* series = GetSeries(family, std::move(labels));
  if (!series->histogram) {
    series->histogram.reset(new Histogram(family->bounds));
  }
  return series->histogram.get();
}

std::string Registry::WriteText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& family : families_) {
    out += "# HELP ";
    out += family->name;
    out += ' ';
    AppendHelpEscaped(family->help, &out);
    out += "\n# TYPE ";
    out += family->name;
    out += ' ';
    out += family->type == Type::kCounter
               ? "counter"
               : family->type == Type::kGauge ? "gauge" : "histogram";
    out += '\n';
    for (const auto& series : family->series) {
      if (family->type == Type::kCounter) {
        out += family->name;
        AppendLabels(series.labels, nullptr, nullptr, &out);
        out += ' ';
        out += std::to_string(series.counter->Value());
        out += '\n';
      } else if (family->type == Type::kGauge) {
        out += family->name;
        AppendLabels(series.labels, nullptr, nullptr, &out);
        out += ' ';
        out += std::to_string(series.gauge->Value());
        out += '\n';
      } else {
        const Histogram& h = *series.histogram;
        int64_t cumulative = 0;
        for (size_t i = 0; i <= h.bounds().size(); ++i) {
          cumulative += h.BucketCount(i);
          std::string le;
          if (i < h.bounds().size()) {
            AppendDouble(h.bounds()[i], &le);
          } else {
            le = "+Inf";
          }
          out += family->name;
          out += "_bucket";
          AppendLabels(series.labels, "le", &le, &out);
          out += ' ';
          out += std::to_string(cumulative);
          out += '\n';
        }
        out += family->name;
        out += "_sum";
        AppendLabels(series.labels, nullptr, nullptr, &out);
        out += ' ';
        AppendDouble(h.Sum(), &out);
        out += '\n';
        out += family->name;
        out += "_count";
        AppendLabels(series.labels, nullptr, nullptr, &out);
        out += ' ';
        out += std::to_string(h.Count());
        out += '\n';
      }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace fastod
