// Lock-light metrics registry with Prometheus text exposition.
//
// The observability layer's contract with the hot paths is simple:
// updating an existing metric is one relaxed atomic RMW (Counter::Inc,
// Gauge::Set/Add, Histogram::Observe), with no locks, allocations, or
// string work. The registry mutex is taken only when a metric is first
// created (call sites cache the returned pointer) and when the whole
// registry is rendered for a scrape.
//
//   auto* sessions = obs::Registry::Global().GetCounter(
//       "fastod_sessions_total", "Discovery sessions finished",
//       {{"algorithm", "fastod"}, {"state", "done"}});
//   sessions->Inc();
//
// Metric handles are owned by their Registry and stay valid for its
// lifetime (for Registry::Global(), the process lifetime); the same
// (name, labels) pair always returns the same handle, so re-resolving is
// cheap but still best hoisted out of loops.
//
// `FASTOD_METRICS=off` (or "0", "false") in the environment flips the
// process-wide Enabled() switch that instrumentation sites consult
// before doing per-event recording work; bench_api_overhead uses
// SetEnabled() to pin the overhead of leaving it on.
#ifndef FASTOD_OBS_METRICS_H_
#define FASTOD_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace fastod {
namespace obs {

/// False when FASTOD_METRICS=off|0|false was set in the environment (read
/// once, at first use) or SetEnabled(false) was called. Instrumentation
/// sites with per-event cost check this; metric objects themselves always
/// accept updates.
bool Enabled();
/// Overrides the environment switch (benchmarks, tests).
void SetEnabled(bool enabled);

/// Label set attached to one time series, e.g. {{"algorithm","fastod"}}.
/// Order-insensitive: the registry canonicalizes by sorting on key.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing counter.
class Counter {
 public:
  void Inc(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A value that can go up and down (queue depths, resident bytes).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram. Bucket upper bounds are set at creation and
/// immutable; Observe() is two relaxed RMWs plus a CAS loop for the sum.
class Histogram {
 public:
  void Observe(double value);

  /// Non-cumulative count of observations in bucket `i`
  /// (i == bounds().size() is the overflow/+Inf bucket).
  int64_t BucketCount(size_t i) const;
  const std::vector<double>& bounds() const { return bounds_; }
  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  explicit Histogram(std::vector<double> bounds);

  std::vector<double> bounds_;  // strictly increasing, finite
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default histogram bucket sets.
std::vector<double> LatencyBucketsSeconds();  // 100us .. 60s, roughly 3x
std::vector<double> SizeBucketsBytes();       // 1KiB .. 1GiB, powers of 8

/// Named metric families with label support. Thread-safe. Instantiable
/// for tests; production code uses the process-wide Global() instance.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& Global();

  /// Finds or creates the series. `name` must match
  /// [a-zA-Z_:][a-zA-Z0-9_:]* and label names [a-zA-Z_][a-zA-Z0-9_]*;
  /// violations and type conflicts on an existing name are programming
  /// errors (FASTOD_CHECK). `help` is taken from the first registration
  /// of a family.
  Counter* GetCounter(const std::string& name, const std::string& help,
                      Labels labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  Labels labels = {});
  /// `bounds` must be strictly increasing and finite; taken from the
  /// first registration of the family (later calls may pass {}).
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          std::vector<double> bounds, Labels labels = {});

  /// Renders the whole registry in Prometheus text exposition format
  /// (families in registration order; HELP/TYPE once per family;
  /// histogram series expand to _bucket/_sum/_count with cumulative
  /// le-buckets ending at +Inf).
  std::string WriteText() const;

 private:
  enum class Type { kCounter, kGauge, kHistogram };
  struct Series {
    Labels labels;  // sorted by key
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string name;
    std::string help;
    Type type;
    std::vector<double> bounds;  // histograms only
    std::vector<Series> series;
  };

  Family* GetFamily(const std::string& name, const std::string& help,
                    Type type);
  Series* GetSeries(Family* family, Labels labels);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Family>> families_;  // registration order
};

}  // namespace obs
}  // namespace fastod

#endif  // FASTOD_OBS_METRICS_H_
