#include "algo/order.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "api/od_sink.h"
#include "od/mapping.h"
#include "validate/od_validator.h"

namespace fastod {

namespace {

struct OdKeyHash {
  size_t operator()(const ListOd& od) const { return ListOdHash()(od); }
};

using OdSet = std::unordered_set<ListOd, OdKeyHash>;

// Node of the list-containment lattice plus its liveness for subtree
// pruning.
struct ListNode {
  OrderSpec list;
  bool extend = true;
};

class Run {
 public:
  Run(const EncodedRelation& relation, const OrderOptions& options,
      const std::vector<StrippedPartition>* singletons)
      : relation_(relation),
        options_(options),
        validator_(&relation, singletons),
        deadline_(options.timeout_seconds > 0.0
                      ? Deadline::After(options.timeout_seconds)
                      : Deadline::Infinite()) {}

  OrderResult Execute() {
    WallTimer timer;
    const int m = relation_.NumAttributes();
    std::vector<ListNode> level;
    for (int a = 0; a < m; ++a) {
      level.push_back(ListNode{OrderSpec{a}, true});
    }
    int l = 1;
    while (!level.empty()) {
      if (options_.max_level > 0 && l > options_.max_level) break;
      result_.total_nodes += static_cast<int64_t>(level.size());
      for (ListNode& node : level) {
        ProcessNode(&node);
        if (result_.timed_out) break;
      }
      if (result_.timed_out) break;
      result_.levels_processed = l;
      // Extend surviving nodes with every absent attribute (all
      // permutations one longer — the factorial frontier).
      std::vector<ListNode> next;
      for (const ListNode& node : level) {
        if (!node.extend) continue;
        AttributeSet used = OrderSpecSet(node.list);
        for (int a = 0; a < m; ++a) {
          if (used.Contains(a)) continue;
          OrderSpec child = node.list;
          child.push_back(a);
          next.push_back(ListNode{std::move(child), true});
        }
      }
      level = std::move(next);
      if (options_.control != nullptr) {
        options_.control->ReportProgress(static_cast<double>(l) / m);
      }
      ++l;
      if (deadline_.Exceeded()) {
        result_.timed_out = true;
        break;
      }
      if (options_.control != nullptr && options_.control->StopRequested()) {
        result_.cancelled = true;
        break;
      }
    }
    // Early exits keep the last level's fraction; only a clean finish
    // reports 100%.
    if (options_.control != nullptr && !result_.timed_out &&
        !result_.cancelled) {
      options_.control->ReportProgress(1.0);
    }
    result_.seconds = timer.ElapsedSeconds();
    return std::move(result_);
  }

 private:
  // Validates / prunes every split candidate of `node`; decides whether the
  // node's subtree is still worth extending.
  void ProcessNode(ListNode* node) {
    const size_t len = node->list.size();
    if (len < 2) return;  // singletons carry no candidate; always extended
    bool any_alive = false;
    for (size_t k = 1; k < len; ++k) {
      ListOd candidate;
      candidate.rhs.assign(node->list.begin(), node->list.begin() + k);
      candidate.lhs.assign(node->list.begin() + k, node->list.end());
      CandidateFate fate = Evaluate(candidate);
      // A candidate can still become valid in the subtree if its failure is
      // repairable: splits are repaired by extending the lhs (which is what
      // child nodes do); swaps are permanent. Valid candidates keep the
      // subtree alive as well (their extensions may reveal longer ODs).
      if (fate != CandidateFate::kSwapDead) any_alive = true;
      if ((++checks_since_poll_ & 0xff) == 0 && deadline_.Exceeded()) {
        result_.timed_out = true;
        return;
      }
    }
    if (options_.enable_pruning) node->extend = any_alive;
  }

  enum class CandidateFate { kValid, kImplied, kSplitDead, kSwapDead };

  CandidateFate Evaluate(const ListOd& od) {
    if (options_.enable_pruning) {
      if (IsSwapPruned(od)) {
        ++result_.candidates_pruned;
        return CandidateFate::kSwapDead;
      }
      if (IsSplitPruned(od)) {
        ++result_.candidates_pruned;
        return CandidateFate::kSplitDead;
      }
      if (IsImpliedByValid(od)) {
        ++result_.candidates_pruned;
        return CandidateFate::kImplied;
      }
    }
    ++result_.candidates_checked;
    // Theorem 1 decomposition: X ↦ Y iff X ↦ XY (no split) and X ~ Y (no
    // swap). Both sides run on cached context partitions.
    bool split = HasSplit(od);
    bool swap = !validator_.AreOrderCompatible(od.lhs, od.rhs);
    if (swap) {
      swapped_.insert(od);
      return CandidateFate::kSwapDead;
    }
    if (split) {
      split_failed_.insert(od);
      return CandidateFate::kSplitDead;
    }
    if (!IsImpliedByValid(od)) {
      result_.ods.push_back(od);
      if (options_.sink != nullptr) options_.sink->OnListOd(od);
    }
    valid_.insert(od);
    return CandidateFate::kValid;
  }

  bool HasSplit(const ListOd& od) {
    AttributeSet context = OrderSpecSet(od.lhs);
    for (int y : od.rhs) {
      if (!validator_.IsConstant(context, y)) return true;
    }
    return false;
  }

  // Swap pruning: a recorded swap for any (lhs-prefix, rhs-prefix) pair
  // makes the candidate permanently invalid.
  bool IsSwapPruned(const ListOd& od) {
    ListOd probe;
    for (size_t i = 1; i <= od.lhs.size(); ++i) {
      probe.lhs.assign(od.lhs.begin(), od.lhs.begin() + i);
      for (size_t j = 1; j <= od.rhs.size(); ++j) {
        probe.rhs.assign(od.rhs.begin(), od.rhs.begin() + j);
        if (probe.lhs.size() == od.lhs.size() &&
            probe.rhs.size() == od.rhs.size()) {
          continue;  // the candidate itself, not a proper prefix pair
        }
        if (swapped_.count(probe) > 0) return true;
        // Swaps are symmetric (they falsify X ~ Y): check the mirror too.
        std::swap(probe.lhs, probe.rhs);
        bool hit = swapped_.count(probe) > 0;
        std::swap(probe.lhs, probe.rhs);
        if (hit) return true;
      }
    }
    return false;
  }

  // Split pruning: a split for X ↦ Y0 with the same lhs and Y0 a prefix of
  // the candidate rhs persists (a non-FD rhs stays a non-FD when extended).
  bool IsSplitPruned(const ListOd& od) {
    ListOd probe;
    probe.lhs = od.lhs;
    for (size_t j = 1; j < od.rhs.size(); ++j) {
      probe.rhs.assign(od.rhs.begin(), od.rhs.begin() + j);
      if (split_failed_.count(probe) > 0) return true;
    }
    return false;
  }

  // ORDER's list-based minimality: X0 ↦ Y0 implies X ↦ Y whenever X0 is a
  // prefix of X and Y is a prefix of Y0 (appending to the lhs and chopping
  // the rhs both preserve validity).
  bool IsImpliedByValid(const ListOd& od) {
    for (const ListOd& known : result_.ods) {
      if (known == od) continue;
      if (IsPrefixOf(known.lhs, od.lhs) && IsPrefixOf(od.rhs, known.rhs)) {
        return true;
      }
    }
    return false;
  }

  const EncodedRelation& relation_;
  const OrderOptions& options_;
  OdValidator validator_;
  Deadline deadline_;
  OdSet swapped_;
  OdSet split_failed_;
  OdSet valid_;
  int64_t checks_since_poll_ = 0;
  OrderResult result_;
};

}  // namespace

MappedCounts MapToCanonicalCounts(const std::vector<ListOd>& ods) {
  std::unordered_set<ConstancyOd, ConstancyOdHash> constancy;
  std::unordered_set<CompatibilityOd, CompatibilityOdHash> compatibility;
  for (const ListOd& od : ods) {
    for (const CanonicalOd& piece : MapListOdToCanonical(od)) {
      if (std::holds_alternative<ConstancyOd>(piece)) {
        const ConstancyOd& c = std::get<ConstancyOd>(piece);
        if (!c.IsTrivial()) constancy.insert(c);
      } else {
        const CompatibilityOd& c = std::get<CompatibilityOd>(piece);
        if (!c.IsTrivial()) compatibility.insert(c);
      }
    }
  }
  MappedCounts counts;
  counts.num_constancy = static_cast<int64_t>(constancy.size());
  counts.num_compatibility = static_cast<int64_t>(compatibility.size());
  return counts;
}

OrderBaseline::OrderBaseline(OrderOptions options) : options_(options) {}

OrderResult OrderBaseline::Discover(
    const EncodedRelation& relation,
    const std::vector<StrippedPartition>* singletons) const {
  Run run(relation, options_, singletons);
  return run.Execute();
}

Result<OrderResult> OrderBaseline::Discover(const Table& table) const {
  Result<EncodedRelation> encoded = EncodedRelation::FromTable(table);
  if (!encoded.ok()) return encoded.status();
  return Discover(*encoded);
}

}  // namespace fastod
