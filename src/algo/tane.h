// TANE (Huhtala et al., ICDE 1998): level-wise discovery of minimal
// functional dependencies using stripped partitions.
//
// The paper's Exp-4 compares FASTOD against TANE to measure "the extra cost
// to capture the additional OD semantics": ODs subsume FDs, the FD side of
// FASTOD's output must coincide exactly with TANE's output, and both scale
// linearly in tuples / exponentially in attributes. This is a faithful
// reimplementation of classic TANE (candidate sets Cc+, key pruning,
// partition-error validity test); footnote 2 of the paper notes the shared
// machinery.
#ifndef FASTOD_ALGO_TANE_H_
#define FASTOD_ALGO_TANE_H_

#include <cstdint>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "common/timer.h"
#include "data/encode.h"
#include "data/table.h"
#include "od/canonical_od.h"
#include "partition/stripped_partition.h"

namespace fastod {

class OdSink;

struct TaneOptions {
  /// Abort after this many seconds (0 = no limit).
  double timeout_seconds = 0.0;
  /// Stop after lattice level `max_level` (0 = no limit).
  int max_level = 0;
  /// Keep discovered FDs in the result vector (true) or only count them
  /// (false) — the TANE analogue of FastodOptions::emit_ods.
  bool emit_fds = true;
  /// Streaming emission (api/od_sink.h): when set, minimal FDs are
  /// delivered through OnConstancy() in discovery order. Independent of
  /// emit_fds, so a run can stream and still render its full report.
  /// Must outlive the run.
  OdSink* sink = nullptr;
  /// Cooperative cancellation + progress, polled at level boundaries.
  ExecutionControl* control = nullptr;
  /// Worker threads. 1 = serial. With more threads, each level's node
  /// validations and partition products run as tasks on the shared
  /// work-stealing scheduler (common/task_graph.h); per-node FD lists
  /// are merged in node order, so output is bit-identical across thread
  /// counts. Unlike FASTOD, TANE keeps a barrier at its pruning step:
  /// key-node minimality (X -> A minimal iff A survives in every
  /// same-level sibling's Cc+) reads sibling state that is only final
  /// once the whole level validated.
  int num_threads = 1;
};

struct TaneResult {
  /// Minimal FDs X -> A, reusing the canonical constancy shape (an FD X->A
  /// and the OD X: [] -> A are the same statement — Theorem 2). Empty when
  /// TaneOptions::emit_fds is false (count-only mode).
  std::vector<ConstancyOd> fds;
  /// Total minimal FDs found, valid in both modes.
  int64_t num_fds = 0;
  bool timed_out = false;
  bool cancelled = false;
  int levels_processed = 0;
  int64_t total_nodes = 0;
  /// PartitionCache traffic (see FastodResult).
  int64_t partition_cache_gets = 0;
  int64_t partition_cache_puts = 0;
  /// Task-graph scheduling telemetry (num_threads > 1; see FastodResult).
  int64_t tasks_ready = 0;
  int64_t tasks_spawned = 0;
  int64_t tasks_stolen = 0;
  double seconds = 0.0;
};

class Tane {
 public:
  explicit Tane(TaneOptions options = TaneOptions());

  /// `singletons`, when given, are prebuilt level-1 partitions Π*_{A}
  /// (one per attribute; see Fastod::Discover). Borrowed; must match the
  /// relation exactly and outlive the call.
  TaneResult Discover(
      const EncodedRelation& relation,
      const std::vector<StrippedPartition>* singletons = nullptr) const;
  Result<TaneResult> Discover(const Table& table) const;

 private:
  TaneOptions options_;
};

}  // namespace fastod

#endif  // FASTOD_ALGO_TANE_H_
