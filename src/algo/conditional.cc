#include "algo/conditional.h"

#include <algorithm>

#include "common/macros.h"
#include "data/schema.h"
#include "partition/stripped_partition.h"
#include "validate/brute_force.h"
#include "validate/od_validator.h"

namespace fastod {

namespace {

AttributeSet OdContext(const CanonicalOd& od) {
  if (std::holds_alternative<ConstancyOd>(od)) {
    return std::get<ConstancyOd>(od).context;
  }
  return std::get<CompatibilityOd>(od).context;
}

AttributeSet OdAttributes(const CanonicalOd& od) {
  if (std::holds_alternative<ConstancyOd>(od)) {
    const ConstancyOd& c = std::get<ConstancyOd>(od);
    return c.context.With(c.attribute);
  }
  const CompatibilityOd& c = std::get<CompatibilityOd>(od);
  return c.context.With(c.a).With(c.b);
}

// Does the OD's shape hold within this single equivalence class?
bool ClassSatisfies(const EncodedRelation& rel, const CanonicalOd& od,
                    std::span<const int32_t> cls,
                    std::vector<int32_t>* scratch) {
  if (std::holds_alternative<ConstancyOd>(od)) {
    const CodeColumn& ranks =
        rel.codes(std::get<ConstancyOd>(od).attribute);
    for (int32_t t : cls) {
      if (ranks[t] != ranks[cls[0]]) return false;
    }
    return true;
  }
  const CompatibilityOd& c = std::get<CompatibilityOd>(od);
  const CodeColumn& ranks_a = rel.codes(c.a);
  const CodeColumn& ranks_b = rel.codes(c.b);
  scratch->assign(cls.begin(), cls.end());
  std::sort(scratch->begin(), scratch->end(),
            [&ranks_a](int32_t s, int32_t t) {
              return ranks_a[s] < ranks_a[t];
            });
  int32_t run_max_b = -1;
  size_t i = 0;
  while (i < scratch->size()) {
    const int32_t group_a = ranks_a[(*scratch)[i]];
    int32_t group_min = ranks_b[(*scratch)[i]];
    int32_t group_max = group_min;
    size_t j = i + 1;
    while (j < scratch->size() && ranks_a[(*scratch)[j]] == group_a) {
      group_min = std::min(group_min, ranks_b[(*scratch)[j]]);
      group_max = std::max(group_max, ranks_b[(*scratch)[j]]);
      ++j;
    }
    if (group_min < run_max_b) return false;
    run_max_b = std::max(run_max_b, group_max);
    i = j;
  }
  return true;
}

}  // namespace

std::string ConditionalOd::ToString(const Schema& schema) const {
  std::string out = "(";
  out += schema.name(condition_attribute);
  out += " in {";
  for (size_t i = 0; i < binding_ranks.size(); ++i) {
    if (i > 0) out += ",";
    out += "#";
    out += std::to_string(binding_ranks[i]);
  }
  char support_buf[32];
  std::snprintf(support_buf, sizeof(support_buf), "%.0f%%",
                support * 100.0);
  out += "}) => ";
  out += CanonicalOdToString(od, schema);
  out += "  [support ";
  out += support_buf;
  out += "]";
  return out;
}

ConditionalOdFinder::ConditionalOdFinder(
    const EncodedRelation* relation,
    const std::vector<StrippedPartition>* singletons)
    : relation_(relation), singletons_(singletons) {
  FASTOD_CHECK(relation_ != nullptr);
}

std::optional<ConditionalOd> ConditionalOdFinder::Refine(
    const CanonicalOd& od, int condition_attribute,
    const ConditionalOdOptions& options) {
  const EncodedRelation& rel = *relation_;
  if (OdAttributes(od).Contains(condition_attribute)) return std::nullopt;
  if (rel.NumRows() == 0) return std::nullopt;

  // Build Π over context ∪ {C}. Class order does not matter; we tally a
  // verdict and a tuple count per C-binding.
  AttributeSet refined_context = OdContext(od).With(condition_attribute);
  std::vector<const CodeColumn*> columns;
  for (int a = refined_context.First(); a >= 0;
       a = refined_context.Next(a)) {
    columns.push_back(&rel.codes(a));
  }
  StrippedPartition partition =
      StrippedPartition::FromCodeColumns(columns, rel.NumRows());

  const CodeColumn& cond_ranks = rel.codes(condition_attribute);
  const int32_t num_bindings = rel.NumDistinct(condition_attribute);
  std::vector<uint8_t> binding_ok(num_bindings, 1);
  std::vector<int32_t> scratch;
  for (int32_t c = 0; c < partition.NumClasses(); ++c) {
    auto cls = partition.Class(c);
    const int32_t binding = cond_ranks[cls[0]];  // constant within class
    if (!binding_ok[binding]) continue;
    if (!ClassSatisfies(rel, od, cls, &scratch)) binding_ok[binding] = 0;
  }

  // Support = covered tuples / all tuples.
  std::vector<int64_t> binding_count(num_bindings, 0);
  for (int64_t t = 0; t < rel.NumRows(); ++t) ++binding_count[cond_ranks[t]];
  ConditionalOd result;
  result.condition_attribute = condition_attribute;
  result.od = od;
  int64_t covered = 0;
  for (int32_t v = 0; v < num_bindings; ++v) {
    if (binding_ok[v]) {
      result.binding_ranks.push_back(v);
      covered += binding_count[v];
    }
  }
  result.support =
      static_cast<double>(covered) / static_cast<double>(rel.NumRows());
  if (result.support < options.min_support) return std::nullopt;
  return result;
}

std::vector<ConditionalOd> ConditionalOdFinder::DiscoverConditional(
    const ConditionalOdOptions& options) {
  const EncodedRelation& rel = *relation_;
  const int m = rel.NumAttributes();
  OdValidator validator(relation_, singletons_);
  std::vector<ConditionalOd> results;

  auto consider = [&](const CanonicalOd& od) {
    if (validator.Holds(od)) return;  // unconditional; nothing to refine
    for (int c = 0; c < m; ++c) {
      if (OdAttributes(od).Contains(c)) continue;
      if (rel.NumDistinct(c) > options.max_condition_cardinality) continue;
      if (rel.NumDistinct(c) < 2) continue;  // constants bind nothing
      std::optional<ConditionalOd> refined = Refine(od, c, options);
      // Require a *strict* portion: if every binding passes, the OD would
      // hold within every {C}-augmented class — interesting, but it is
      // the ordinary OD {C} ∪ context, not a conditional one.
      if (refined.has_value() &&
          static_cast<int32_t>(refined->binding_ranks.size()) <
              rel.NumDistinct(c)) {
        results.push_back(std::move(*refined));
      }
    }
  };

  for (int a = 0; a < m; ++a) {
    for (int b = a + 1; b < m; ++b) {
      consider(CompatibilityOd(AttributeSet::Empty(), a, b));
    }
  }
  for (int a = 0; a < m; ++a) {
    for (int b = 0; b < m; ++b) {
      if (a != b) consider(ConstancyOd{AttributeSet::Single(a), b});
    }
  }

  std::stable_sort(results.begin(), results.end(),
                   [](const ConditionalOd& x, const ConditionalOd& y) {
                     return x.support > y.support;
                   });
  if (static_cast<int64_t>(results.size()) > options.max_results) {
    results.resize(options.max_results);
  }
  return results;
}

}  // namespace fastod
