#include "algo/tane.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <utility>

#include "api/od_sink.h"
#include "common/task_graph.h"
#include "common/thread_pool.h"
#include "od/attribute_set.h"
#include "partition/partition_cache.h"

namespace fastod {

namespace {

struct Node {
  AttributeSet set;
  AttributeSet cc;  // Cc+(X)
};

struct Level {
  std::vector<Node> nodes;
  std::unordered_map<AttributeSet, int32_t, AttributeSetHash> index;

  Node* Find(AttributeSet set) {
    auto it = index.find(set);
    return it == index.end() ? nullptr : &nodes[it->second];
  }
  void Add(Node node) {
    index.emplace(node.set, static_cast<int32_t>(nodes.size()));
    nodes.push_back(std::move(node));
  }
};

class Run {
 public:
  Run(const EncodedRelation& relation, const TaneOptions& options,
      const std::vector<StrippedPartition>* singletons)
      : relation_(relation),
        options_(options),
        singletons_(singletons),
        full_set_(AttributeSet::FullSet(relation.NumAttributes())),
        deadline_(options.timeout_seconds > 0.0
                      ? Deadline::After(options.timeout_seconds)
                      : Deadline::Infinite()) {
    if (options_.num_threads > 1) {
      pool_ = std::make_unique<ThreadPool>(options_.num_threads - 1,
                                           "fastod-fd");
    }
  }

  TaneResult Execute() {
    WallTimer timer;
    Initialize();
    const int m = relation_.NumAttributes();
    int l = 1;
    while (!current_.nodes.empty()) {
      if (options_.max_level > 0 && l > options_.max_level) break;
      result_.total_nodes += static_cast<int64_t>(current_.nodes.size());
      ComputeDependencies(l);
      Prune();
      // Skip the join for a level the max_level cap would refuse anyway.
      Level next;
      if (options_.max_level == 0 || l < options_.max_level) {
        next = CalculateNextLevel(l);
      }
      result_.levels_processed = l;
      if (options_.control != nullptr && m > 0) {
        options_.control->ReportProgress(static_cast<double>(l) / m);
      }
      previous_ = std::move(current_);
      current_ = std::move(next);
      cache_.EvictBelow(l);
      ++l;
      if (deadline_.Exceeded()) {
        result_.timed_out = true;
        break;
      }
      if (options_.control != nullptr && options_.control->StopRequested()) {
        result_.cancelled = true;
        break;
      }
    }
    // Early exits keep the last level's fraction; only a clean finish
    // reports 100%.
    if (options_.control != nullptr && !result_.timed_out &&
        !result_.cancelled) {
      options_.control->ReportProgress(1.0);
    }
    result_.partition_cache_gets = cache_.gets();
    result_.partition_cache_puts = cache_.puts();
    result_.seconds = timer.ElapsedSeconds();
    return std::move(result_);
  }

 private:
  void Initialize() {
    const int64_t n = relation_.NumRows();
    Node root;
    root.set = AttributeSet::Empty();
    root.cc = full_set_;
    previous_.Add(std::move(root));
    cache_.Put(0, AttributeSet::Empty(), StrippedPartition::Universe(n));
    const std::vector<StrippedPartition>* prebuilt = singletons_;
    FASTOD_DCHECK(prebuilt == nullptr ||
                  static_cast<int>(prebuilt->size()) ==
                      relation_.NumAttributes());
    for (int a = 0; a < relation_.NumAttributes(); ++a) {
      Node node;
      node.set = AttributeSet::Single(a);
      current_.Add(std::move(node));
      cache_.Put(1, AttributeSet::Single(a),
                 prebuilt != nullptr
                     ? (*prebuilt)[a]
                     : StrippedPartition::ForAttribute(relation_.codes(a)));
    }
  }

  // Derives Cc+(X) from the previous level and validates the candidate
  // FDs of one node. Reads only the immutable previous level and the
  // partition cache; writes only its own node and `found` slot — safe to
  // run for all nodes concurrently.
  void ProcessNode(Node* node, std::vector<ConstancyOd>* found) {
    AttributeSet cc = full_set_;
    for (int a = node->set.First(); a >= 0; a = node->set.Next(a)) {
      Node* parent = previous_.Find(node->set.Without(a));
      FASTOD_DCHECK(parent != nullptr);
      cc = cc.Intersect(parent->cc);
    }
    node->cc = cc;
    const StrippedPartition& node_partition = cache_.Get(node->set);
    AttributeSet candidates = node->set.Intersect(node->cc);
    for (int a = candidates.First(); a >= 0; a = candidates.Next(a)) {
      const AttributeSet context = node->set.Without(a);
      const StrippedPartition& context_partition = cache_.Get(context);
      if (context_partition.Error() == node_partition.Error()) {
        found->push_back(ConstancyOd{context, a});
        node->cc = node->cc.Without(a);
        node->cc = node->cc.Intersect(node->set);
      }
    }
  }

  void ComputeDependencies(int l) {
    (void)l;
    const size_t n = current_.nodes.size();
    std::vector<std::vector<ConstancyOd>> found(n);
    if (pool_ == nullptr) {
      for (size_t i = 0; i < n; ++i) {
        ProcessNode(&current_.nodes[i], &found[i]);
      }
    } else {
      // One task per node on the work-stealing scheduler; intra-level
      // only — Prune() below is a genuine barrier (see tane.h).
      TaskGraph graph(pool_.get());
      for (size_t i = 0; i < n; ++i) {
        graph.Spawn([this, i, &found] {
          ProcessNode(&current_.nodes[i], &found[i]);
        });
      }
      graph.Run();
      result_.tasks_ready += static_cast<int64_t>(n);
      result_.tasks_spawned += graph.spawned();
      result_.tasks_stolen += graph.stolen();
    }
    // Merge in node order: deterministic FD emission for any thread
    // count (the same discipline as FASTOD's level cascade).
    for (const std::vector<ConstancyOd>& f : found) {
      for (const ConstancyOd& fd : f) EmitFd(fd);
    }
  }

  // TANE pruning: delete Cc+-empty nodes; for (super)key nodes, emit the
  // remaining minimal FDs X -> A (A outside X) and delete the node.
  void Prune() {
    Level pruned;
    for (Node& node : current_.nodes) {
      if (node.cc.IsEmpty()) continue;
      const StrippedPartition& partition = cache_.Get(node.set);
      if (partition.IsSuperkey()) {
        AttributeSet outside = node.cc.Minus(node.set);
        for (int a = outside.First(); a >= 0; a = outside.Next(a)) {
          // X -> A is minimal iff A ∈ ∩_{B∈X} Cc+(X ∪ {A} \ {B}).
          bool minimal = true;
          for (int b = node.set.First(); b >= 0 && minimal;
               b = node.set.Next(b)) {
            Node* sibling = current_.Find(node.set.With(a).Without(b));
            if (sibling == nullptr || !sibling->cc.Contains(a)) {
              minimal = false;
            }
          }
          if (minimal) {
            EmitFd(ConstancyOd{node.set, a});
          }
        }
        continue;  // delete key node
      }
      pruned.Add(std::move(node));
    }
    current_ = std::move(pruned);
  }

  Level CalculateNextLevel(int l) {
    Level next;
    struct Pending {
      AttributeSet set;
      AttributeSet parent_a;
      AttributeSet parent_b;
      StrippedPartition product;
    };
    std::vector<Pending> pending;
    std::unordered_map<AttributeSet, std::vector<int32_t>, AttributeSetHash>
        blocks;
    for (int32_t i = 0; i < static_cast<int32_t>(current_.nodes.size());
         ++i) {
      AttributeSet set = current_.nodes[i].set;
      int highest = -1;
      for (int a = set.First(); a >= 0; a = set.Next(a)) highest = a;
      blocks[set.Without(highest)].push_back(i);
    }
    std::vector<AttributeSet> keys;
    keys.reserve(blocks.size());
    for (const auto& [key, members] : blocks) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    for (const AttributeSet& key : keys) {
      std::vector<int32_t>& members = blocks[key];
      std::sort(members.begin(), members.end(),
                [this](int32_t x, int32_t y) {
                  return current_.nodes[x].set < current_.nodes[y].set;
                });
      for (size_t i = 0; i < members.size(); ++i) {
        for (size_t j = i + 1; j < members.size(); ++j) {
          const AttributeSet a = current_.nodes[members[i]].set;
          const AttributeSet b = current_.nodes[members[j]].set;
          const AttributeSet candidate = a.Union(b);
          bool all_present = true;
          for (int x = candidate.First(); x >= 0 && all_present;
               x = candidate.Next(x)) {
            if (current_.Find(candidate.Without(x)) == nullptr) {
              all_present = false;
            }
          }
          if (!all_present) continue;
          Node node;
          node.set = candidate;
          next.Add(std::move(node));
          pending.push_back(Pending{candidate, a, b, {}});
        }
      }
    }
    // The products — the bulk of the join's cost at scale — run as tasks;
    // puts happen afterwards in join order so cache traffic stays
    // identical to the serial walk.
    if (pool_ == nullptr) {
      for (Pending& p : pending) {
        p.product = cache_.Get(p.parent_a).Product(cache_.Get(p.parent_b));
      }
    } else {
      TaskGraph graph(pool_.get());
      for (Pending& p : pending) {
        graph.Spawn([this, &p] {
          p.product =
              cache_.Get(p.parent_a).Product(cache_.Get(p.parent_b));
        });
      }
      graph.Run();
      result_.tasks_ready += static_cast<int64_t>(pending.size());
      result_.tasks_spawned += graph.spawned();
      result_.tasks_stolen += graph.stolen();
    }
    for (Pending& p : pending) {
      cache_.Put(l + 1, p.set, std::move(p.product));
    }
    return next;
  }

  void EmitFd(const ConstancyOd& fd) {
    ++result_.num_fds;
    if (options_.sink != nullptr) {
      options_.sink->OnConstancy(fd);
    }
    if (options_.emit_fds) {
      result_.fds.push_back(fd);
    }
  }

  const EncodedRelation& relation_;
  const TaneOptions& options_;
  const std::vector<StrippedPartition>* singletons_;
  AttributeSet full_set_;
  Deadline deadline_;
  std::unique_ptr<ThreadPool> pool_;
  PartitionCache cache_;
  Level previous_;
  Level current_;
  TaneResult result_;
};

}  // namespace

Tane::Tane(TaneOptions options) : options_(options) {}

TaneResult Tane::Discover(
    const EncodedRelation& relation,
    const std::vector<StrippedPartition>* singletons) const {
  Run run(relation, options_, singletons);
  return run.Execute();
}

Result<TaneResult> Tane::Discover(const Table& table) const {
  Result<EncodedRelation> encoded = EncodedRelation::FromTable(table);
  if (!encoded.ok()) return encoded.status();
  return Discover(*encoded);
}

}  // namespace fastod
