#include "algo/fastod.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <unordered_map>
#include <utility>

#include "algo/approximate.h"
#include "api/od_sink.h"
#include "common/thread_pool.h"
#include "partition/partition_cache.h"

namespace fastod {

namespace {

// A pair {A,B} with A < B packed into 12 bits (A*64+B). Cs+(X) is a sorted
// vector of these.
using PairId = uint16_t;

PairId MakePair(int a, int b) {
  FASTOD_DCHECK(a != b);
  if (a > b) std::swap(a, b);
  return static_cast<PairId>(a * 64 + b);
}
int PairFirst(PairId p) { return p / 64; }
int PairSecond(PairId p) { return p % 64; }

bool SortedContains(const std::vector<PairId>& v, PairId p) {
  return std::binary_search(v.begin(), v.end(), p);
}

struct Node {
  AttributeSet set;
  AttributeSet cc;            // Cc+(X), subset of R
  std::vector<PairId> cs;     // Cs+(X), sorted
};

struct Level {
  std::vector<Node> nodes;
  std::unordered_map<AttributeSet, int32_t, AttributeSetHash> index;

  Node* Find(AttributeSet set) {
    auto it = index.find(set);
    return it == index.end() ? nullptr : &nodes[it->second];
  }
  const Node* Find(AttributeSet set) const {
    auto it = index.find(set);
    return it == index.end() ? nullptr : &nodes[it->second];
  }
  void Add(Node node) {
    index.emplace(node.set, static_cast<int32_t>(nodes.size()));
    nodes.push_back(std::move(node));
  }
};

// Per-node validation results, merged into the global result in node order
// so that output is deterministic under any thread count.
struct NodeOutcome {
  int64_t num_constancy = 0;
  int64_t num_compatibility = 0;
  int64_t num_bidirectional = 0;
  std::vector<ConstancyOd> constancy;             // only if emit_ods
  std::vector<CompatibilityOd> compatibility;     // only if emit_ods
  std::vector<BidiCompatibilityOd> bidirectional; // only if emit_ods
  int64_t constancy_checks = 0;
  int64_t swap_checks = 0;
  int64_t key_prune_hits = 0;
};

// The whole per-run state of one discovery, so Discover() stays const and
// re-entrant on the Fastod object.
class Run {
 public:
  Run(const EncodedRelation& relation, const FastodOptions& options,
      const std::vector<StrippedPartition>* singletons)
      : relation_(relation),
        options_(options),
        singletons_(singletons),
        full_set_(AttributeSet::FullSet(relation.NumAttributes())),
        sorted_(relation),
        serial_checker_(&relation, &sorted_, options.swap_method),
        deadline_(options.timeout_seconds > 0.0
                      ? Deadline::After(options.timeout_seconds)
                      : Deadline::Infinite()) {
    if (options_.num_threads > 1) {
      pool_ = std::make_unique<ThreadPool>(options_.num_threads - 1);
    }
  }

  FastodResult Execute() {
    WallTimer total_timer;
    InitializeLevels();
    const int m = relation_.NumAttributes();
    int l = 1;
    while (!current_.nodes.empty()) {
      if (options_.max_level > 0 && l > options_.max_level) break;
      WallTimer level_timer;
      FastodLevelStats stats;
      stats.level = l;
      stats.nodes = static_cast<int64_t>(current_.nodes.size());
      result_.total_nodes += stats.nodes;

      ComputeOds(l, &stats);
      if (result_.timed_out || result_.cancelled) {
        FinishLevel(level_timer, &stats);
        break;
      }
      PruneLevels(l, &stats);
      Level next = CalculateNextLevel(l);
      FinishLevel(level_timer, &stats);
      result_.levels_processed = l;
      if (options_.control != nullptr && m > 0) {
        options_.control->ReportProgress(static_cast<double>(l) / m);
      }

      previous_ = std::move(current_);
      current_ = std::move(next);
      cache_.EvictBelow(l - 1);
      ++l;
      if (deadline_.Exceeded()) {
        result_.timed_out = true;
        break;
      }
      if (Cancelled()) {
        result_.cancelled = true;
        break;
      }
    }
    // A clean finish is 100%; early exits keep the last level's fraction
    // so pollers never see a cancelled/timed-out run as complete.
    if (options_.control != nullptr && !result_.timed_out &&
        !result_.cancelled) {
      options_.control->ReportProgress(1.0);
    }
    result_.partition_cache_gets = cache_.gets();
    result_.partition_cache_puts = cache_.puts();
    result_.seconds = total_timer.ElapsedSeconds();
    return std::move(result_);
  }

 private:
  // Runs body(i) for i in [0, count) — on the pool when configured.
  void ParallelOrSerial(int64_t count,
                        const std::function<void(int64_t)>& body) {
    if (pool_ != nullptr) {
      pool_->ParallelFor(count, body);
    } else {
      for (int64_t i = 0; i < count; ++i) body(i);
    }
  }

  void InitializeLevels() {
    const int64_t n = relation_.NumRows();
    const int m = relation_.NumAttributes();
    // L0 = { {} } with Cc+({}) = R, Cs+({}) = {}.
    Node root;
    root.set = AttributeSet::Empty();
    root.cc = full_set_;
    previous_.Add(std::move(root));
    cache_.Put(0, AttributeSet::Empty(), StrippedPartition::Universe(n));
    // L1 = singletons: copied from the dataset's prebuilt partitions when
    // available (load-once/discover-many), computed otherwise.
    const std::vector<StrippedPartition>* prebuilt = singletons_;
    FASTOD_DCHECK(prebuilt == nullptr ||
                  static_cast<int>(prebuilt->size()) == m);
    for (int a = 0; a < m; ++a) {
      Node node;
      node.set = AttributeSet::Single(a);
      current_.Add(std::move(node));
      cache_.Put(1, AttributeSet::Single(a),
                 prebuilt != nullptr
                     ? (*prebuilt)[a]
                     : StrippedPartition::ForAttribute(relation_.codes(a)));
    }
  }

  // Algorithm 3: candidate-set maintenance plus validation at level l.
  void ComputeOds(int l, FastodLevelStats* stats) {
    const int64_t num_nodes = static_cast<int64_t>(current_.nodes.size());
    // Phase 1: derive Cc+ / Cs+ for every node from the previous level
    // (reads only the immutable previous level; writes only its own node).
    if (options_.minimality_pruning) {
      ParallelOrSerial(num_nodes, [&](int64_t i) {
        ComputeCandidateSets(l, &current_.nodes[i]);
      });
    }
    // Phase 2: validate every node against the partition cache (immutable
    // during the phase), accumulating per-node outcomes.
    std::vector<NodeOutcome> outcomes(num_nodes);
    std::atomic<bool> expired{false};
    std::atomic<bool> interrupted{false};
    ParallelOrSerial(num_nodes, [&](int64_t i) {
      if (expired.load(std::memory_order_relaxed) ||
          interrupted.load(std::memory_order_relaxed)) {
        return;
      }
      if ((i & 0xff) == 0) {
        if (deadline_.Exceeded()) {
          expired.store(true, std::memory_order_relaxed);
          return;
        }
        if (Cancelled()) {
          interrupted.store(true, std::memory_order_relaxed);
          return;
        }
      }
      if (pool_ == nullptr) {
        // Serial: reuse the persistent checker's scratch buffers.
        ValidateNode(l, &current_.nodes[i], &serial_checker_, &outcomes[i]);
      } else {
        SwapChecker checker(&relation_, &sorted_, options_.swap_method);
        ValidateNode(l, &current_.nodes[i], &checker, &outcomes[i]);
      }
    });
    if (expired.load()) result_.timed_out = true;
    if (interrupted.load()) result_.cancelled = true;
    // Merge in node order: deterministic output for any thread count. A
    // sink streams here; emit_ods independently accumulates the vectors.
    for (NodeOutcome& o : outcomes) {
      result_.num_constancy += o.num_constancy;
      result_.num_compatibility += o.num_compatibility;
      result_.num_bidirectional += o.num_bidirectional;
      stats->constancy_found += o.num_constancy;
      stats->compatibility_found += o.num_compatibility;
      stats->bidirectional_found += o.num_bidirectional;
      stats->constancy_checks += o.constancy_checks;
      stats->swap_checks += o.swap_checks;
      stats->key_prune_hits += o.key_prune_hits;
      if (options_.sink != nullptr) {
        for (const ConstancyOd& od : o.constancy) {
          options_.sink->OnConstancy(od);
        }
        for (const CompatibilityOd& od : o.compatibility) {
          options_.sink->OnCompatibility(od);
        }
        for (const BidiCompatibilityOd& od : o.bidirectional) {
          options_.sink->OnBidirectional(od);
        }
      }
      if (options_.emit_ods) {
        std::move(o.constancy.begin(), o.constancy.end(),
                  std::back_inserter(result_.constancy_ods));
        std::move(o.compatibility.begin(), o.compatibility.end(),
                  std::back_inserter(result_.compatibility_ods));
        std::move(o.bidirectional.begin(), o.bidirectional.end(),
                  std::back_inserter(result_.bidirectional_ods));
      }
    }
  }

  void ComputeCandidateSets(int l, Node* node) {
    // Cc+(X) = ∩_{A∈X} Cc+(X\A)  (Lemma 9).
    AttributeSet cc = full_set_;
    for (int a = node->set.First(); a >= 0; a = node->set.Next(a)) {
      const Node* parent = previous_.Find(node->set.Without(a));
      FASTOD_DCHECK(parent != nullptr);
      cc = cc.Intersect(parent->cc);
    }
    node->cc = cc;

    if (l == 2) {
      // Cs+({A,B}) is initialized to the single pair {A,B} (Alg. 3 line 4).
      int a = node->set.First();
      int b = node->set.Next(a);
      node->cs = {MakePair(a, b)};
      return;
    }
    if (l < 2) return;
    // Cs+(X) = { {A,B} ∈ ∪_{C∈X} Cs+(X\C) |
    //            ∀D ∈ X\{A,B}: {A,B} ∈ Cs+(X\D) }   (Alg. 3 line 6).
    std::vector<PairId> candidates;
    for (int c = node->set.First(); c >= 0; c = node->set.Next(c)) {
      const Node* parent = previous_.Find(node->set.Without(c));
      FASTOD_DCHECK(parent != nullptr);
      candidates.insert(candidates.end(), parent->cs.begin(),
                        parent->cs.end());
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    std::vector<PairId> kept;
    for (PairId p : candidates) {
      const int a = PairFirst(p);
      const int b = PairSecond(p);
      bool in_all = true;
      for (int d = node->set.First(); d >= 0 && in_all;
           d = node->set.Next(d)) {
        if (d == a || d == b) continue;
        const Node* parent = previous_.Find(node->set.Without(d));
        FASTOD_DCHECK(parent != nullptr);
        if (!SortedContains(parent->cs, p)) in_all = false;
      }
      if (in_all) kept.push_back(p);
    }
    node->cs = std::move(kept);
  }

  void ValidateNode(int l, Node* node, SwapChecker* checker,
                    NodeOutcome* out) {
    if (options_.minimality_pruning) {
      ValidateNodeMinimal(l, node, checker, out);
    } else {
      ValidateNodeExhaustive(l, *node, checker, out);
    }
  }

  void ValidateNodeMinimal(int l, Node* node, SwapChecker* checker,
                           NodeOutcome* out) {
    const StrippedPartition& node_partition = cache_.Get(node->set);
    // --- Constancy side: X\A: [] -> A for A ∈ X ∩ Cc+(X) (Lemma 7). ---
    AttributeSet fd_candidates = node->set.Intersect(node->cc);
    for (int a = fd_candidates.First(); a >= 0; a = fd_candidates.Next(a)) {
      const AttributeSet context = node->set.Without(a);
      const StrippedPartition& context_partition = cache_.Get(context);
      bool valid;
      if (options_.key_pruning && context_partition.IsSuperkey()) {
        valid = true;  // Lemma 12: a superkey context forces constancy.
        ++out->key_prune_hits;
      } else {
        ++out->constancy_checks;
        valid = ConstancyHolds(context_partition, node_partition, a);
      }
      if (valid) {
        RecordConstancy(ConstancyOd{context, a}, out);
        node->cc = node->cc.Without(a);
        // Line 14 (drop R \ X) rests on Lemma 5 / Strengthen, which does
        // not survive threshold validity: two ε-repairs need not compose
        // into one. Exact mode only; approximate mode keeps the plain
        // subset-minimality candidates (cf. TANE's approximate variant).
        if (options_.max_error <= 0.0) {
          node->cc = node->cc.Intersect(node->set);
        }
      }
    }
    if (l < 2) return;
    // --- Compatibility side: X\{A,B}: A ~ B for {A,B} ∈ Cs+(X). ---
    std::vector<PairId> remaining;
    remaining.reserve(node->cs.size());
    for (PairId p : node->cs) {
      const int a = PairFirst(p);
      const int b = PairSecond(p);
      // Line 18: drop pairs whose endpoints lost FD-candidacy (Propagate).
      const Node* parent_xb = previous_.Find(node->set.Without(b));
      const Node* parent_xa = previous_.Find(node->set.Without(a));
      FASTOD_DCHECK(parent_xb != nullptr && parent_xa != nullptr);
      if (!parent_xb->cc.Contains(a) || !parent_xa->cc.Contains(b)) {
        continue;  // removed from Cs+
      }
      const AttributeSet context = node->set.Without(a).Without(b);
      const StrippedPartition& context_partition = cache_.Get(context);
      if (options_.key_pruning && context_partition.IsSuperkey()) {
        // Lemma 13: valid but never minimal — remove without emitting.
        ++out->key_prune_hits;
        continue;
      }
      ++out->swap_checks;
      if (CompatibilityHolds(checker, context_partition, a, b)) {
        RecordCompatibility(CompatibilityOd(context, a, b), out);
        continue;  // removed from Cs+ (line 22)
      }
      if (options_.discover_bidirectional) {
        ++out->swap_checks;
        if (BidiCompatibilityHolds(checker, context_partition, a, b)) {
          RecordBidirectional(BidiCompatibilityOd(context, a, b), out);
          continue;  // pair resolved with opposite polarity
        }
      }
      remaining.push_back(p);
    }
    node->cs = std::move(remaining);
  }

  // The FASTOD-NoPruning configuration: validate every non-trivial OD at
  // this node and count all valid ones, minimal or not (Exp-5/6).
  void ValidateNodeExhaustive(int l, const Node& node, SwapChecker* checker,
                              NodeOutcome* out) {
    const StrippedPartition& node_partition = cache_.Get(node.set);
    for (int a = node.set.First(); a >= 0; a = node.set.Next(a)) {
      const AttributeSet context = node.set.Without(a);
      ++out->constancy_checks;
      if (ConstancyHolds(cache_.Get(context), node_partition, a)) {
        RecordConstancy(ConstancyOd{context, a}, out);
      }
    }
    if (l < 2) return;
    for (int a = node.set.First(); a >= 0; a = node.set.Next(a)) {
      for (int b = node.set.Next(a); b >= 0; b = node.set.Next(b)) {
        const AttributeSet context = node.set.Without(a).Without(b);
        ++out->swap_checks;
        if (CompatibilityHolds(checker, cache_.Get(context), a, b)) {
          RecordCompatibility(CompatibilityOd(context, a, b), out);
        } else if (options_.discover_bidirectional) {
          ++out->swap_checks;
          if (BidiCompatibilityHolds(checker, cache_.Get(context), a, b)) {
            RecordBidirectional(BidiCompatibilityOd(context, a, b), out);
          }
        }
      }
    }
  }

  // Algorithm 4: delete nodes whose candidate sets are both empty.
  void PruneLevels(int l, FastodLevelStats* stats) {
    if (!options_.minimality_pruning || !options_.level_pruning || l < 2) {
      return;
    }
    Level pruned;
    for (Node& node : current_.nodes) {
      if (node.cc.IsEmpty() && node.cs.empty()) {
        ++stats->nodes_pruned;
        continue;
      }
      pruned.Add(std::move(node));
    }
    current_ = std::move(pruned);
  }

  // Algorithm 2: Apriori-style join of single-attribute-difference blocks,
  // plus the all-subsets-present check; computes each new node's partition
  // as the product of its two generating parents (Section 4.6). The
  // products — the bulk of the level's work at scale — run in parallel.
  Level CalculateNextLevel(int l) {
    Level next;
    // Block key: the node's set minus its highest attribute. Two nodes in
    // the same block share an (l-1)-subset and differ in one attribute.
    std::unordered_map<AttributeSet, std::vector<int32_t>, AttributeSetHash>
        blocks;
    for (int32_t i = 0; i < static_cast<int32_t>(current_.nodes.size());
         ++i) {
      AttributeSet set = current_.nodes[i].set;
      int highest = -1;
      for (int a = set.First(); a >= 0; a = set.Next(a)) highest = a;
      blocks[set.Without(highest)].push_back(i);
    }
    // Deterministic iteration: sort block keys.
    std::vector<AttributeSet> keys;
    keys.reserve(blocks.size());
    for (const auto& [key, members] : blocks) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    struct Pending {
      AttributeSet set;
      AttributeSet parent_a;
      AttributeSet parent_b;
      StrippedPartition product;
    };
    std::vector<Pending> pending;
    for (const AttributeSet& key : keys) {
      std::vector<int32_t>& members = blocks[key];
      std::sort(members.begin(), members.end(),
                [this](int32_t x, int32_t y) {
                  return current_.nodes[x].set < current_.nodes[y].set;
                });
      for (size_t i = 0; i < members.size(); ++i) {
        for (size_t j = i + 1; j < members.size(); ++j) {
          const AttributeSet a = current_.nodes[members[i]].set;
          const AttributeSet b = current_.nodes[members[j]].set;
          const AttributeSet candidate = a.Union(b);
          if (candidate.Count() != l + 1) continue;
          // All l-subsets must be live nodes of the current level.
          bool all_present = true;
          for (int x = candidate.First(); x >= 0 && all_present;
               x = candidate.Next(x)) {
            if (current_.Find(candidate.Without(x)) == nullptr) {
              all_present = false;
            }
          }
          if (!all_present) continue;
          Node node;
          node.set = candidate;
          next.Add(std::move(node));
          pending.push_back(Pending{candidate, a, b, {}});
        }
      }
    }
    ParallelOrSerial(static_cast<int64_t>(pending.size()), [&](int64_t i) {
      pending[i].product =
          cache_.Get(pending[i].parent_a).Product(
              cache_.Get(pending[i].parent_b));
    });
    for (Pending& p : pending) {
      cache_.Put(l + 1, p.set, std::move(p.product));
    }
    return next;
  }

  // Exact validity uses the O(1) partition-error identity of Section 4.6;
  // approximate validity (max_error > 0) uses the g3 removal errors.
  bool ConstancyHolds(const StrippedPartition& context_partition,
                      const StrippedPartition& node_partition, int a) const {
    if (options_.max_error <= 0.0) {
      return context_partition.Error() == node_partition.Error();
    }
    return ConstancyError(relation_, context_partition, a) <=
           options_.max_error;
  }

  bool CompatibilityHolds(SwapChecker* checker,
                          const StrippedPartition& context_partition, int a,
                          int b) const {
    if (options_.max_error <= 0.0) {
      return checker->IsOrderCompatible(context_partition, a, b);
    }
    return CompatibilityError(relation_, context_partition, a, b) <=
           options_.max_error;
  }

  bool BidiCompatibilityHolds(SwapChecker* checker,
                              const StrippedPartition& context_partition,
                              int a, int b) const {
    if (options_.max_error <= 0.0) {
      return checker->IsOrderCompatibleDirected(context_partition, a, b,
                                                /*opposite=*/true);
    }
    return CompatibilityError(relation_, context_partition, a, b,
                              /*opposite=*/true) <= options_.max_error;
  }

  // Deadline expiry (the hard timeout-ms armed on the control) stops the
  // run at the same safepoints as cancellation; Algorithm::Execute turns
  // it into a kDeadlineExceeded error afterwards.
  bool Cancelled() const {
    return options_.control != nullptr && options_.control->StopRequested();
  }

  // Per-node buffers are needed both to materialize (emit_ods) and to
  // stream (sink): streaming drains them at the deterministic merge.
  bool BufferOds() const {
    return options_.emit_ods || options_.sink != nullptr;
  }

  void RecordConstancy(ConstancyOd od, NodeOutcome* out) const {
    ++out->num_constancy;
    if (BufferOds()) out->constancy.push_back(od);
  }

  void RecordCompatibility(CompatibilityOd od, NodeOutcome* out) const {
    ++out->num_compatibility;
    if (BufferOds()) out->compatibility.push_back(od);
  }

  void RecordBidirectional(BidiCompatibilityOd od, NodeOutcome* out) const {
    ++out->num_bidirectional;
    if (BufferOds()) out->bidirectional.push_back(od);
  }

  void FinishLevel(const WallTimer& timer, FastodLevelStats* stats) {
    stats->seconds = timer.ElapsedSeconds();
    if (options_.collect_level_stats) result_.level_stats.push_back(*stats);
  }

  const EncodedRelation& relation_;
  const FastodOptions& options_;
  const std::vector<StrippedPartition>* singletons_;
  AttributeSet full_set_;
  SortedPartitions sorted_;
  SwapChecker serial_checker_;
  Deadline deadline_;
  std::unique_ptr<ThreadPool> pool_;
  PartitionCache cache_;
  Level previous_;  // level l-1 node state (final Cc+/Cs+ values)
  Level current_;   // level l
  FastodResult result_;
};

}  // namespace

std::string FastodResult::CountsToString() const {
  return std::to_string(NumOds()) + " (" + std::to_string(num_constancy) +
         " + " + std::to_string(num_compatibility) +
         (num_bidirectional > 0
              ? " + " + std::to_string(num_bidirectional) + " bidi"
              : "") +
         ")";
}

Fastod::Fastod(FastodOptions options) : options_(options) {}

FastodResult Fastod::Discover(
    const EncodedRelation& relation,
    const std::vector<StrippedPartition>* singletons) const {
  Run run(relation, options_, singletons);
  return run.Execute();
}

Result<FastodResult> Fastod::Discover(const Table& table) const {
  Result<EncodedRelation> encoded = EncodedRelation::FromTable(table);
  if (!encoded.ok()) return encoded.status();
  return Discover(*encoded);
}

}  // namespace fastod
