#include "algo/fastod.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "algo/approximate.h"
#include "api/od_sink.h"
#include "common/fault.h"
#include "common/task_graph.h"
#include "common/thread_pool.h"
#include "partition/partition_cache.h"

namespace fastod {

namespace {

// A pair {A,B} with A < B packed into 12 bits (A*64+B). Cs+(X) is a sorted
// vector of these.
using PairId = uint16_t;

PairId MakePair(int a, int b) {
  FASTOD_DCHECK(a != b);
  if (a > b) std::swap(a, b);
  return static_cast<PairId>(a * 64 + b);
}
int PairFirst(PairId p) { return p / 64; }
int PairSecond(PairId p) { return p % 64; }

bool SortedContains(const std::vector<PairId>& v, PairId p) {
  return std::binary_search(v.begin(), v.end(), p);
}

struct Node {
  AttributeSet set;
  AttributeSet cc;            // Cc+(X), subset of R
  std::vector<PairId> cs;     // Cs+(X), sorted
};

struct Level {
  std::vector<Node> nodes;
  std::unordered_map<AttributeSet, int32_t, AttributeSetHash> index;

  Node* Find(AttributeSet set) {
    auto it = index.find(set);
    return it == index.end() ? nullptr : &nodes[it->second];
  }
  const Node* Find(AttributeSet set) const {
    auto it = index.find(set);
    return it == index.end() ? nullptr : &nodes[it->second];
  }
  void Add(Node node) {
    index.emplace(node.set, static_cast<int32_t>(nodes.size()));
    nodes.push_back(std::move(node));
  }
};

// Per-node validation results, merged into the global result in canonical
// node order so that output is deterministic under any thread count.
struct NodeOutcome {
  int64_t num_constancy = 0;
  int64_t num_compatibility = 0;
  int64_t num_bidirectional = 0;
  std::vector<ConstancyOd> constancy;             // only if emit_ods
  std::vector<CompatibilityOd> compatibility;     // only if emit_ods
  std::vector<BidiCompatibilityOd> bidirectional; // only if emit_ods
  int64_t constancy_checks = 0;
  int64_t swap_checks = 0;
  int64_t key_prune_hits = 0;
};

// One lattice node of the task-graph path. Dependency tracking and the
// bookkeeping fields (bumps, parents) are guarded by Run::tg_mutex_; the
// candidate sets and outcome are written only by the node's own task and
// read only after it finished (FinishNodeTask's mutex acquisition is the
// release/acquire edge).
struct TgNode {
  AttributeSet set;
  int level = 0;
  AttributeSet cc;
  std::vector<PairId> cs;
  // The node's finished-alive (l-1)-subsets, in finish (arrival) order.
  std::vector<const TgNode*> parents;
  int bumps = 0;  // parents recorded so far; == level ⇒ runnable
  bool ran = false;
  bool alive = false;  // survives Lemma 11 pruning
  NodeOutcome outcome;
  double task_seconds = 0.0;
};

// Per-level progress of the task-graph path (guarded by Run::tg_mutex_,
// except the emission itself which is serialized by tg_emitting_).
struct TgLevel {
  std::vector<TgNode*> order;    // canonical (sequential) emission order
  std::vector<TgNode*> created;  // every node minted at this level
  bool structure_known = false;  // membership final; `expected` valid
  bool emitted = false;
  int64_t expected = 0;
  int64_t finished = 0;
  double start_seconds = 0.0;  // vs run start, for the occupancy gauge
  double busy_seconds = 0.0;   // summed task execution time
};

// The whole per-run state of one discovery, so Discover() stays const and
// re-entrant on the Fastod object.
class Run {
 public:
  Run(const EncodedRelation& relation, const FastodOptions& options,
      const std::vector<StrippedPartition>* singletons)
      : relation_(relation),
        options_(options),
        singletons_(singletons),
        full_set_(AttributeSet::FullSet(relation.NumAttributes())),
        sorted_(relation),
        serial_checker_(&relation, &sorted_, options.swap_method),
        deadline_(options.timeout_seconds > 0.0
                      ? Deadline::After(options.timeout_seconds)
                      : Deadline::Infinite()) {
    if (options_.num_threads > 1) {
      pool_ = std::make_unique<ThreadPool>(options_.num_threads - 1,
                                           "fastod-od");
    }
  }

  FastodResult Execute() {
    return pool_ != nullptr ? ExecuteTaskGraph() : ExecuteSerial();
  }

 private:
  // ===== Serial level-wise walk (num_threads == 1) =====================
  // The reference implementation: its node order is the canonical order
  // the task-graph path reproduces, and its output is the equivalence
  // oracle for every parallel run (tests/parallel_test.cc).

  FastodResult ExecuteSerial() {
    WallTimer total_timer;
    InitializeLevels();
    const int m = relation_.NumAttributes();
    int l = 1;
    while (!current_.nodes.empty()) {
      if (options_.max_level > 0 && l > options_.max_level) break;
      WallTimer level_timer;
      FastodLevelStats stats;
      stats.level = l;
      stats.nodes = static_cast<int64_t>(current_.nodes.size());
      result_.total_nodes += stats.nodes;

      ComputeOds(l, &stats);
      if (result_.timed_out || result_.cancelled) {
        FinishLevel(level_timer, &stats);
        break;
      }
      PruneLevels(l, &stats);
      // Skip the apriori join for a level the max_level cap would refuse
      // anyway (the task-graph path never creates those nodes either).
      Level next;
      if (options_.max_level == 0 || l < options_.max_level) {
        next = CalculateNextLevel(l);
      }
      FinishLevel(level_timer, &stats);
      result_.levels_processed = l;
      if (options_.control != nullptr && m > 0) {
        options_.control->ReportProgress(static_cast<double>(l) / m);
      }

      previous_ = std::move(current_);
      current_ = std::move(next);
      cache_.EvictBelow(l - 1);
      ++l;
      if (deadline_.Exceeded()) {
        result_.timed_out = true;
        break;
      }
      if (Cancelled()) {
        result_.cancelled = true;
        break;
      }
    }
    // A clean finish is 100%; early exits keep the last level's fraction
    // so pollers never see a cancelled/timed-out run as complete.
    if (options_.control != nullptr && !result_.timed_out &&
        !result_.cancelled) {
      options_.control->ReportProgress(1.0);
    }
    result_.partition_cache_gets = cache_.gets();
    result_.partition_cache_puts = cache_.puts();
    result_.seconds = total_timer.ElapsedSeconds();
    return std::move(result_);
  }

  void InitializeLevels() {
    const int64_t n = relation_.NumRows();
    const int m = relation_.NumAttributes();
    // L0 = { {} } with Cc+({}) = R, Cs+({}) = {}.
    Node root;
    root.set = AttributeSet::Empty();
    root.cc = full_set_;
    previous_.Add(std::move(root));
    cache_.Put(0, AttributeSet::Empty(), StrippedPartition::Universe(n));
    // L1 = singletons: copied from the dataset's prebuilt partitions when
    // available (load-once/discover-many), computed otherwise.
    const std::vector<StrippedPartition>* prebuilt = singletons_;
    FASTOD_DCHECK(prebuilt == nullptr ||
                  static_cast<int>(prebuilt->size()) == m);
    for (int a = 0; a < m; ++a) {
      Node node;
      node.set = AttributeSet::Single(a);
      current_.Add(std::move(node));
      cache_.Put(1, AttributeSet::Single(a),
                 prebuilt != nullptr
                     ? (*prebuilt)[a]
                     : StrippedPartition::ForAttribute(relation_.codes(a)));
    }
  }

  // Algorithm 3: candidate-set maintenance plus validation at level l.
  void ComputeOds(int l, FastodLevelStats* stats) {
    const int64_t num_nodes = static_cast<int64_t>(current_.nodes.size());
    auto parent_of = [this](AttributeSet set) {
      return previous_.Find(set);
    };
    // Phase 1: derive Cc+ / Cs+ for every node from the previous level.
    if (options_.minimality_pruning) {
      for (int64_t i = 0; i < num_nodes; ++i) {
        ComputeCandidateSets(l, &current_.nodes[i], parent_of);
      }
    }
    // Phase 2: validate every node against the partition cache.
    std::vector<NodeOutcome> outcomes(num_nodes);
    for (int64_t i = 0; i < num_nodes; ++i) {
      if ((i & 0xff) == 0) {
        if (deadline_.Exceeded()) {
          result_.timed_out = true;
          break;
        }
        if (Cancelled()) {
          result_.cancelled = true;
          break;
        }
      }
      // Serial: reuse the persistent checker's scratch buffers.
      ValidateNode(l, &current_.nodes[i], parent_of, &serial_checker_,
                   &outcomes[i]);
    }
    // Merge in node order: deterministic output for any thread count. A
    // sink streams here; emit_ods independently accumulates the vectors.
    for (NodeOutcome& o : outcomes) {
      MergeOutcome(&o, stats);
    }
  }

  // Algorithm 4: delete nodes whose candidate sets are both empty.
  void PruneLevels(int l, FastodLevelStats* stats) {
    if (!options_.minimality_pruning || !options_.level_pruning || l < 2) {
      return;
    }
    Level pruned;
    for (Node& node : current_.nodes) {
      if (node.cc.IsEmpty() && node.cs.empty()) {
        ++stats->nodes_pruned;
        continue;
      }
      pruned.Add(std::move(node));
    }
    current_ = std::move(pruned);
  }

  // Algorithm 2: Apriori-style join of single-attribute-difference blocks,
  // plus the all-subsets-present check; computes each new node's partition
  // as the product of its two generating parents (Section 4.6).
  Level CalculateNextLevel(int l) {
    Level next;
    // Block key: the node's set minus its highest attribute. Two nodes in
    // the same block share an (l-1)-subset and differ in one attribute.
    std::unordered_map<AttributeSet, std::vector<int32_t>, AttributeSetHash>
        blocks;
    for (int32_t i = 0; i < static_cast<int32_t>(current_.nodes.size());
         ++i) {
      AttributeSet set = current_.nodes[i].set;
      int highest = -1;
      for (int a = set.First(); a >= 0; a = set.Next(a)) highest = a;
      blocks[set.Without(highest)].push_back(i);
    }
    // Deterministic iteration: sort block keys.
    std::vector<AttributeSet> keys;
    keys.reserve(blocks.size());
    for (const auto& [key, members] : blocks) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    for (const AttributeSet& key : keys) {
      std::vector<int32_t>& members = blocks[key];
      std::sort(members.begin(), members.end(),
                [this](int32_t x, int32_t y) {
                  return current_.nodes[x].set < current_.nodes[y].set;
                });
      for (size_t i = 0; i < members.size(); ++i) {
        for (size_t j = i + 1; j < members.size(); ++j) {
          const AttributeSet a = current_.nodes[members[i]].set;
          const AttributeSet b = current_.nodes[members[j]].set;
          const AttributeSet candidate = a.Union(b);
          if (candidate.Count() != l + 1) continue;
          // All l-subsets must be live nodes of the current level.
          bool all_present = true;
          for (int x = candidate.First(); x >= 0 && all_present;
               x = candidate.Next(x)) {
            if (current_.Find(candidate.Without(x)) == nullptr) {
              all_present = false;
            }
          }
          if (!all_present) continue;
          Node node;
          node.set = candidate;
          next.Add(std::move(node));
          cache_.Put(l + 1, candidate,
                     cache_.Get(a).Product(cache_.Get(b)));
        }
      }
    }
    return next;
  }

  // ===== Task-graph execution (num_threads > 1) ========================
  // One task per lattice node. A node task builds the node's stripped
  // partition from its two canonical parents, derives Cc+/Cs+, validates,
  // then bumps each (l+1)-superset's dependency counter — a child spawns
  // the instant all of its l-subsets have finished alive, with no barrier
  // between levels. Determinism is restored at emission: per-node
  // outcomes are buffered, and when a level completes, the cascade
  // replays Algorithm 2's join order over the level's alive set (which
  // depends only on validation results, not scheduling) and merges in
  // exactly the order the serial walk would have used.

  FastodResult ExecuteTaskGraph() {
    const int m = relation_.NumAttributes();
    TaskGraph graph(pool_.get());
    tg_graph_ = &graph;
    tg_levels_.resize(m + 2);

    // Level 0: the root is finished and alive by construction.
    cache_.Put(0, AttributeSet::Empty(),
               StrippedPartition::Universe(relation_.NumRows()));
    TgNode* root = FindOrCreateTgNode(AttributeSet::Empty(), 0);
    root->cc = full_set_;
    root->ran = true;
    root->alive = true;
    TgLevel& l0 = tg_levels_[0];
    l0.order.push_back(root);
    l0.structure_known = true;
    l0.emitted = true;
    l0.expected = 1;
    l0.finished = 1;

    // Level 1: all singletons, in attribute order (the canonical order).
    TgLevel& l1 = tg_levels_[1];
    l1.structure_known = true;
    l1.expected = m;
    tg_next_unemitted_ = 1;
    for (int a = 0; a < m; ++a) {
      TgNode* node = FindOrCreateTgNode(AttributeSet::Single(a), 1);
      node->parents.push_back(root);
      node->bumps = 1;
      l1.order.push_back(node);
    }
    for (TgNode* node : l1.order) SpawnNodeTask(node);
    graph.Run();

    if (tg_timed_out_.load()) result_.timed_out = true;
    if (tg_cancelled_.load()) result_.cancelled = true;
    if (options_.control != nullptr && !result_.timed_out &&
        !result_.cancelled) {
      options_.control->ReportProgress(1.0);
    }
    result_.tasks_ready = tg_ready_.load(std::memory_order_relaxed);
    result_.tasks_spawned = graph.spawned();
    result_.tasks_stolen = graph.stolen();
    result_.partition_cache_gets = cache_.gets();
    result_.partition_cache_puts = cache_.puts();
    result_.seconds = tg_timer_.ElapsedSeconds();
    return std::move(result_);
  }

  void SpawnNodeTask(TgNode* node) {
    tg_ready_.fetch_add(1, std::memory_order_relaxed);
    tg_graph_->Spawn([this, node] { RunNodeTask(node); });
  }

  void RunNodeTask(TgNode* node) {
    WallTimer timer;
    bool stopped = tg_stop_.load(std::memory_order_acquire);
    // Task-boundary fault point: "fail" degrades to cooperative
    // cancellation (the run ends flagged cancelled, like a control
    // stop); "throw" exercises the TaskGraph exception drain; "sleep"
    // randomizes completion order for the determinism stress tests.
    if (!stopped && FASTOD_FAULT_POINT("task_graph.task")) {
      tg_cancelled_.store(true);
      tg_stop_.store(true, std::memory_order_release);
      stopped = true;
    }
    if (!stopped) {
      const int l = node->level;
      // The node's partition: product of its two canonical parents
      // (Section 4.6), exactly as the serial join computes it. Both are
      // cached — a task only becomes ready after every parent finished.
      if (l == 1) {
        const int a = node->set.First();
        cache_.Put(1, node->set,
                   singletons_ != nullptr
                       ? (*singletons_)[a]
                       : StrippedPartition::ForAttribute(relation_.codes(a)));
      } else {
        int y1 = -1, y2 = -1;  // the two highest attributes, y1 < y2
        for (int a = node->set.First(); a >= 0; a = node->set.Next(a)) {
          y1 = y2;
          y2 = a;
        }
        cache_.Put(l, node->set,
                   cache_.Get(node->set.Without(y2))
                       .Product(cache_.Get(node->set.Without(y1))));
      }
      auto parent_of = [node](AttributeSet set) -> const TgNode* {
        for (const TgNode* p : node->parents) {
          if (p->set == set) return p;
        }
        return nullptr;
      };
      if (options_.minimality_pruning) {
        ComputeCandidateSets(l, node, parent_of);
      }
      SwapChecker checker(&relation_, &sorted_, options_.swap_method);
      ValidateNode(l, node, parent_of, &checker, &node->outcome);
      node->ran = true;
      node->alive = !(options_.minimality_pruning &&
                      options_.level_pruning && l >= 2 &&
                      node->cc.IsEmpty() && node->cs.empty());
      // Safepoints: deadline and cooperative cancellation, checked at
      // every task boundary (finer-grained than the serial per-level
      // checks). A stop lets in-flight tasks drain as cheap no-ops.
      if (deadline_.Exceeded()) {
        tg_timed_out_.store(true);
        tg_stop_.store(true, std::memory_order_release);
      } else if (Cancelled()) {
        tg_cancelled_.store(true);
        tg_stop_.store(true, std::memory_order_release);
      }
    }
    node->task_seconds = timer.ElapsedSeconds();
    FinishNodeTask(node);
  }

  // Records a finished task, resolves child dependencies, and drives the
  // in-order emission cascade.
  void FinishNodeTask(TgNode* node) {
    const int m = relation_.NumAttributes();
    std::vector<TgNode*> runnable;
    std::unique_lock<std::mutex> lock(tg_mutex_);
    TgLevel& lv = tg_levels_[node->level];
    ++lv.finished;
    lv.busy_seconds += node->task_seconds;
    const int next_l = node->level + 1;
    if (node->ran && node->alive && next_l <= m &&
        (options_.max_level == 0 || next_l <= options_.max_level) &&
        !tg_stop_.load(std::memory_order_relaxed)) {
      for (int b = 0; b < m; ++b) {
        if (node->set.Contains(b)) continue;
        TgNode* child = FindOrCreateTgNode(node->set.With(b), next_l);
        child->parents.push_back(node);
        if (++child->bumps == next_l) runnable.push_back(child);
      }
    }
    Cascade(lock);
    lock.unlock();
    // Spawn outside the tracker lock: the child may start (and finish)
    // on another worker immediately.
    for (TgNode* child : runnable) SpawnNodeTask(child);
  }

  // Emits every completed level in order. Called with tg_mutex_ held;
  // releases it around the emission itself (sinks may block on
  // backpressure) with tg_emitting_ serializing emitters.
  void Cascade(std::unique_lock<std::mutex>& lock) {
    while (tg_next_unemitted_ < static_cast<int>(tg_levels_.size())) {
      TgLevel& lv = tg_levels_[tg_next_unemitted_];
      if (!lv.structure_known || lv.finished < lv.expected) return;
      if (tg_emitting_) return;  // the active emitter re-runs the cascade
      tg_emitting_ = true;
      const int v = tg_next_unemitted_;
      lock.unlock();
      const bool fully_ran = EmitLevel(v);
      lock.lock();
      tg_emitting_ = false;
      lv.emitted = true;
      ++tg_next_unemitted_;
      if (lv.expected == 0) return;  // lattice exhausted
      if (!fully_ran || tg_stop_.load(std::memory_order_relaxed)) return;
      PrepareNextLevel(v);
      // Levels ≤ v are fully finished, so running tasks sit at levels
      // ≥ v+1 and read partitions at levels ≥ v-1 (a node's deepest
      // read is its grandparent context X\{A,B}); nodes two levels
      // down are likewise unreachable. Release both.
      cache_.EvictBelow(v - 1);
      if (v >= 2) FreeLevel(v - 2);
    }
  }

  // Merges one completed level in canonical node order — the only writer
  // of result_ on the task-graph path, serialized by tg_emitting_.
  // Returns false if a stop left part of the level unexecuted (the
  // partial outcomes are still merged, like the serial timeout path).
  bool EmitLevel(int v) {
    TgLevel& lv = tg_levels_[v];
    if (lv.order.empty()) return true;
    FastodLevelStats stats;
    stats.level = v;
    stats.nodes = lv.expected;
    bool fully_ran = true;
    for (TgNode* node : lv.order) {
      if (!node->ran) {
        fully_ran = false;
        continue;
      }
      if (!node->alive) ++stats.nodes_pruned;
      MergeOutcome(&node->outcome, &stats);
    }
    result_.total_nodes += lv.expected;
    const int m = relation_.NumAttributes();
    if (fully_ran) {
      result_.levels_processed = v;
      if (options_.control != nullptr && m > 0) {
        options_.control->ReportProgress(static_cast<double>(v) / m);
      }
    }
    stats.seconds = tg_timer_.ElapsedSeconds() - lv.start_seconds;
    const int party = pool_->num_threads() + 1;
    if (stats.seconds > 0.0) {
      stats.occupancy =
          std::min(1.0, lv.busy_seconds / (stats.seconds * party));
    }
    if (options_.collect_level_stats) result_.level_stats.push_back(stats);
    return fully_ran;
  }

  // Fixes level v+1's membership and canonical order by replaying
  // Algorithm 2's join over level v's alive nodes. Runs under tg_mutex_
  // once level v has fully finished, so membership is final: every
  // candidate with all l-subsets alive has already been created (and
  // spawned) by dependency bumps. Candidates that can never run — some
  // subset finished dead — are garbage-collected here.
  void PrepareNextLevel(int v) {
    TgLevel& lv = tg_levels_[v];
    TgLevel& next = tg_levels_[v + 1];
    next.start_seconds = tg_timer_.ElapsedSeconds();
    std::unordered_map<AttributeSet, std::vector<int32_t>, AttributeSetHash>
        blocks;
    std::vector<TgNode*> alive;
    alive.reserve(lv.order.size());
    for (TgNode* n : lv.order) {
      if (n->alive) alive.push_back(n);
    }
    for (int32_t i = 0; i < static_cast<int32_t>(alive.size()); ++i) {
      AttributeSet set = alive[i]->set;
      int highest = -1;
      for (int a = set.First(); a >= 0; a = set.Next(a)) highest = a;
      blocks[set.Without(highest)].push_back(i);
    }
    std::vector<AttributeSet> keys;
    keys.reserve(blocks.size());
    for (const auto& [key, members] : blocks) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    for (const AttributeSet& key : keys) {
      std::vector<int32_t>& members = blocks[key];
      std::sort(members.begin(), members.end(),
                [&alive](int32_t x, int32_t y) {
                  return alive[x]->set < alive[y]->set;
                });
      for (size_t i = 0; i < members.size(); ++i) {
        for (size_t j = i + 1; j < members.size(); ++j) {
          const AttributeSet candidate =
              alive[members[i]]->set.Union(alive[members[j]]->set);
          if (candidate.Count() != v + 1) continue;
          auto it = tg_nodes_.find(candidate);
          // Fully-bumped ⇔ all (l-1)-subsets finished alive — the same
          // predicate as the serial all-subsets-present check.
          if (it == tg_nodes_.end() || it->second->bumps != v + 1) {
            continue;
          }
          next.order.push_back(it->second.get());
        }
      }
    }
    next.expected = static_cast<int64_t>(next.order.size());
    next.structure_known = true;
    // Drop dependency counters that will never fire: level v is done, so
    // no further bumps can arrive at level v+1.
    for (TgNode* n : next.created) {
      if (n->bumps != v + 1) tg_nodes_.erase(n->set);
    }
    next.created.clear();
  }

  // Releases the nodes of an emitted level once nothing can read them:
  // their children (the only readers of cc/cs via parent links) have all
  // finished, and their outcomes were merged at emission.
  void FreeLevel(int v) {
    for (TgNode* n : tg_levels_[v].order) tg_nodes_.erase(n->set);
    tg_levels_[v].order.clear();
  }

  TgNode* FindOrCreateTgNode(AttributeSet set, int level) {
    auto it = tg_nodes_.find(set);
    if (it != tg_nodes_.end()) return it->second.get();
    auto node = std::make_unique<TgNode>();
    node->set = set;
    node->level = level;
    TgNode* raw = node.get();
    tg_levels_[level].created.push_back(raw);
    tg_nodes_.emplace(set, std::move(node));
    return raw;
  }

  // ===== Shared validation core ========================================
  // Generic over the node record and parent lookup: the serial path
  // passes Level::Find over the previous level, the task-graph path a
  // scan of the node's parent links. Both return a pointer exposing
  // .cc/.cs, which is all Algorithm 3 needs.

  // Cc+(X) and Cs+(X) from the (l-1)-subsets (Lemma 9 / Alg. 3 line 6).
  template <typename NodeT, typename ParentFn>
  void ComputeCandidateSets(int l, NodeT* node, const ParentFn& parent_of) {
    // Cc+(X) = ∩_{A∈X} Cc+(X\A)  (Lemma 9).
    AttributeSet cc = full_set_;
    for (int a = node->set.First(); a >= 0; a = node->set.Next(a)) {
      const auto* parent = parent_of(node->set.Without(a));
      FASTOD_DCHECK(parent != nullptr);
      cc = cc.Intersect(parent->cc);
    }
    node->cc = cc;

    if (l == 2) {
      // Cs+({A,B}) is initialized to the single pair {A,B} (Alg. 3 line 4).
      int a = node->set.First();
      int b = node->set.Next(a);
      node->cs = {MakePair(a, b)};
      return;
    }
    if (l < 2) return;
    // Cs+(X) = { {A,B} ∈ ∪_{C∈X} Cs+(X\C) |
    //            ∀D ∈ X\{A,B}: {A,B} ∈ Cs+(X\D) }   (Alg. 3 line 6).
    std::vector<PairId> candidates;
    for (int c = node->set.First(); c >= 0; c = node->set.Next(c)) {
      const auto* parent = parent_of(node->set.Without(c));
      FASTOD_DCHECK(parent != nullptr);
      candidates.insert(candidates.end(), parent->cs.begin(),
                        parent->cs.end());
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    std::vector<PairId> kept;
    for (PairId p : candidates) {
      const int a = PairFirst(p);
      const int b = PairSecond(p);
      bool in_all = true;
      for (int d = node->set.First(); d >= 0 && in_all;
           d = node->set.Next(d)) {
        if (d == a || d == b) continue;
        const auto* parent = parent_of(node->set.Without(d));
        FASTOD_DCHECK(parent != nullptr);
        if (!SortedContains(parent->cs, p)) in_all = false;
      }
      if (in_all) kept.push_back(p);
    }
    node->cs = std::move(kept);
  }

  template <typename NodeT, typename ParentFn>
  void ValidateNode(int l, NodeT* node, const ParentFn& parent_of,
                    SwapChecker* checker, NodeOutcome* out) {
    if (options_.minimality_pruning) {
      ValidateNodeMinimal(l, node, parent_of, checker, out);
    } else {
      ValidateNodeExhaustive(l, node->set, checker, out);
    }
  }

  template <typename NodeT, typename ParentFn>
  void ValidateNodeMinimal(int l, NodeT* node, const ParentFn& parent_of,
                           SwapChecker* checker, NodeOutcome* out) {
    const StrippedPartition& node_partition = cache_.Get(node->set);
    // --- Constancy side: X\A: [] -> A for A ∈ X ∩ Cc+(X) (Lemma 7). ---
    AttributeSet fd_candidates = node->set.Intersect(node->cc);
    for (int a = fd_candidates.First(); a >= 0; a = fd_candidates.Next(a)) {
      const AttributeSet context = node->set.Without(a);
      const StrippedPartition& context_partition = cache_.Get(context);
      bool valid;
      if (options_.key_pruning && context_partition.IsSuperkey()) {
        valid = true;  // Lemma 12: a superkey context forces constancy.
        ++out->key_prune_hits;
      } else {
        ++out->constancy_checks;
        valid = ConstancyHolds(context_partition, node_partition, a);
      }
      if (valid) {
        RecordConstancy(ConstancyOd{context, a}, out);
        node->cc = node->cc.Without(a);
        // Line 14 (drop R \ X) rests on Lemma 5 / Strengthen, which does
        // not survive threshold validity: two ε-repairs need not compose
        // into one. Exact mode only; approximate mode keeps the plain
        // subset-minimality candidates (cf. TANE's approximate variant).
        if (options_.max_error <= 0.0) {
          node->cc = node->cc.Intersect(node->set);
        }
      }
    }
    if (l < 2) return;
    // --- Compatibility side: X\{A,B}: A ~ B for {A,B} ∈ Cs+(X). ---
    std::vector<PairId> remaining;
    remaining.reserve(node->cs.size());
    for (PairId p : node->cs) {
      const int a = PairFirst(p);
      const int b = PairSecond(p);
      // Line 18: drop pairs whose endpoints lost FD-candidacy (Propagate).
      const auto* parent_xb = parent_of(node->set.Without(b));
      const auto* parent_xa = parent_of(node->set.Without(a));
      FASTOD_DCHECK(parent_xb != nullptr && parent_xa != nullptr);
      if (!parent_xb->cc.Contains(a) || !parent_xa->cc.Contains(b)) {
        continue;  // removed from Cs+
      }
      const AttributeSet context = node->set.Without(a).Without(b);
      const StrippedPartition& context_partition = cache_.Get(context);
      if (options_.key_pruning && context_partition.IsSuperkey()) {
        // Lemma 13: valid but never minimal — remove without emitting.
        ++out->key_prune_hits;
        continue;
      }
      ++out->swap_checks;
      if (CompatibilityHolds(checker, context_partition, a, b)) {
        RecordCompatibility(CompatibilityOd(context, a, b), out);
        continue;  // removed from Cs+ (line 22)
      }
      if (options_.discover_bidirectional) {
        ++out->swap_checks;
        if (BidiCompatibilityHolds(checker, context_partition, a, b)) {
          RecordBidirectional(BidiCompatibilityOd(context, a, b), out);
          continue;  // pair resolved with opposite polarity
        }
      }
      remaining.push_back(p);
    }
    node->cs = std::move(remaining);
  }

  // The FASTOD-NoPruning configuration: validate every non-trivial OD at
  // this node and count all valid ones, minimal or not (Exp-5/6).
  void ValidateNodeExhaustive(int l, AttributeSet set, SwapChecker* checker,
                              NodeOutcome* out) {
    const StrippedPartition& node_partition = cache_.Get(set);
    for (int a = set.First(); a >= 0; a = set.Next(a)) {
      const AttributeSet context = set.Without(a);
      ++out->constancy_checks;
      if (ConstancyHolds(cache_.Get(context), node_partition, a)) {
        RecordConstancy(ConstancyOd{context, a}, out);
      }
    }
    if (l < 2) return;
    for (int a = set.First(); a >= 0; a = set.Next(a)) {
      for (int b = set.Next(a); b >= 0; b = set.Next(b)) {
        const AttributeSet context = set.Without(a).Without(b);
        ++out->swap_checks;
        if (CompatibilityHolds(checker, cache_.Get(context), a, b)) {
          RecordCompatibility(CompatibilityOd(context, a, b), out);
        } else if (options_.discover_bidirectional) {
          ++out->swap_checks;
          if (BidiCompatibilityHolds(checker, cache_.Get(context), a, b)) {
            RecordBidirectional(BidiCompatibilityOd(context, a, b), out);
          }
        }
      }
    }
  }

  // Accumulates one node's buffered outcome into the run result, the
  // level stats, and the sink — the single merge point both execution
  // paths share, so their emission behavior cannot drift apart.
  void MergeOutcome(NodeOutcome* o, FastodLevelStats* stats) {
    result_.num_constancy += o->num_constancy;
    result_.num_compatibility += o->num_compatibility;
    result_.num_bidirectional += o->num_bidirectional;
    stats->constancy_found += o->num_constancy;
    stats->compatibility_found += o->num_compatibility;
    stats->bidirectional_found += o->num_bidirectional;
    stats->constancy_checks += o->constancy_checks;
    stats->swap_checks += o->swap_checks;
    stats->key_prune_hits += o->key_prune_hits;
    if (options_.sink != nullptr) {
      for (const ConstancyOd& od : o->constancy) {
        options_.sink->OnConstancy(od);
      }
      for (const CompatibilityOd& od : o->compatibility) {
        options_.sink->OnCompatibility(od);
      }
      for (const BidiCompatibilityOd& od : o->bidirectional) {
        options_.sink->OnBidirectional(od);
      }
    }
    if (options_.emit_ods) {
      std::move(o->constancy.begin(), o->constancy.end(),
                std::back_inserter(result_.constancy_ods));
      std::move(o->compatibility.begin(), o->compatibility.end(),
                std::back_inserter(result_.compatibility_ods));
      std::move(o->bidirectional.begin(), o->bidirectional.end(),
                std::back_inserter(result_.bidirectional_ods));
    }
  }

  // Exact validity uses the O(1) partition-error identity of Section 4.6;
  // approximate validity (max_error > 0) uses the g3 removal errors.
  bool ConstancyHolds(const StrippedPartition& context_partition,
                      const StrippedPartition& node_partition, int a) const {
    if (options_.max_error <= 0.0) {
      return context_partition.Error() == node_partition.Error();
    }
    return ConstancyError(relation_, context_partition, a) <=
           options_.max_error;
  }

  bool CompatibilityHolds(SwapChecker* checker,
                          const StrippedPartition& context_partition, int a,
                          int b) const {
    if (options_.max_error <= 0.0) {
      return checker->IsOrderCompatible(context_partition, a, b);
    }
    return CompatibilityError(relation_, context_partition, a, b) <=
           options_.max_error;
  }

  bool BidiCompatibilityHolds(SwapChecker* checker,
                              const StrippedPartition& context_partition,
                              int a, int b) const {
    if (options_.max_error <= 0.0) {
      return checker->IsOrderCompatibleDirected(context_partition, a, b,
                                                /*opposite=*/true);
    }
    return CompatibilityError(relation_, context_partition, a, b,
                              /*opposite=*/true) <= options_.max_error;
  }

  // Deadline expiry (the hard timeout-ms armed on the control) stops the
  // run at the same safepoints as cancellation; Algorithm::Execute turns
  // it into a kDeadlineExceeded error afterwards.
  bool Cancelled() const {
    return options_.control != nullptr && options_.control->StopRequested();
  }

  // Per-node buffers are needed both to materialize (emit_ods) and to
  // stream (sink): streaming drains them at the deterministic merge.
  bool BufferOds() const {
    return options_.emit_ods || options_.sink != nullptr;
  }

  void RecordConstancy(ConstancyOd od, NodeOutcome* out) const {
    ++out->num_constancy;
    if (BufferOds()) out->constancy.push_back(od);
  }

  void RecordCompatibility(CompatibilityOd od, NodeOutcome* out) const {
    ++out->num_compatibility;
    if (BufferOds()) out->compatibility.push_back(od);
  }

  void RecordBidirectional(BidiCompatibilityOd od, NodeOutcome* out) const {
    ++out->num_bidirectional;
    if (BufferOds()) out->bidirectional.push_back(od);
  }

  void FinishLevel(const WallTimer& timer, FastodLevelStats* stats) {
    stats->seconds = timer.ElapsedSeconds();
    if (options_.collect_level_stats) result_.level_stats.push_back(*stats);
  }

  const EncodedRelation& relation_;
  const FastodOptions& options_;
  const std::vector<StrippedPartition>* singletons_;
  AttributeSet full_set_;
  SortedPartitions sorted_;
  SwapChecker serial_checker_;
  Deadline deadline_;
  std::unique_ptr<ThreadPool> pool_;
  PartitionCache cache_;
  Level previous_;  // serial path: level l-1 node state (final Cc+/Cs+)
  Level current_;   // serial path: level l
  FastodResult result_;

  // Task-graph state. tg_mutex_ guards the node map, dependency
  // counters, and level bookkeeping; tg_emitting_ serializes result
  // emission outside the lock; the atomics are the cross-task stop
  // signal.
  TaskGraph* tg_graph_ = nullptr;
  WallTimer tg_timer_;
  std::mutex tg_mutex_;
  std::unordered_map<AttributeSet, std::unique_ptr<TgNode>, AttributeSetHash>
      tg_nodes_;
  std::vector<TgLevel> tg_levels_;
  int tg_next_unemitted_ = 0;
  bool tg_emitting_ = false;
  std::atomic<int64_t> tg_ready_{0};
  std::atomic<bool> tg_stop_{false};
  std::atomic<bool> tg_timed_out_{false};
  std::atomic<bool> tg_cancelled_{false};
};

}  // namespace

std::string FastodResult::CountsToString() const {
  return std::to_string(NumOds()) + " (" + std::to_string(num_constancy) +
         " + " + std::to_string(num_compatibility) +
         (num_bidirectional > 0
              ? " + " + std::to_string(num_bidirectional) + " bidi"
              : "") +
         ")";
}

Fastod::Fastod(FastodOptions options) : options_(options) {}

FastodResult Fastod::Discover(
    const EncodedRelation& relation,
    const std::vector<StrippedPartition>* singletons) const {
  Run run(relation, options_, singletons);
  return run.Execute();
}

Result<FastodResult> Fastod::Discover(const Table& table) const {
  Result<EncodedRelation> encoded = EncodedRelation::FromTable(table);
  if (!encoded.ok()) return encoded.status();
  return Discover(*encoded);
}

}  // namespace fastod
