#include "algo/approximate.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

namespace fastod {

int64_t ConstancyRemovals(const EncodedRelation& relation,
                          const StrippedPartition& context_partition,
                          int attribute) {
  const CodeColumn& ranks = relation.codes(attribute);
  int64_t removals = 0;
  std::unordered_map<int32_t, int32_t> freq;
  for (int32_t c = 0; c < context_partition.NumClasses(); ++c) {
    auto cls = context_partition.Class(c);
    freq.clear();
    int32_t best = 0;
    for (int32_t t : cls) {
      int32_t f = ++freq[ranks[t]];
      best = std::max(best, f);
    }
    removals += static_cast<int64_t>(cls.size()) - best;
  }
  return removals;
}

int64_t CompatibilityRemovals(const EncodedRelation& relation,
                              const StrippedPartition& context_partition,
                              int a, int b, bool opposite) {
  const CodeColumn& ranks_a = relation.codes(a);
  const CodeColumn& ranks_b = relation.codes(b);
  // For the descending (opposite) polarity, reflect B-ranks: descending
  // compatibility of (A, B) is ascending compatibility of (A, B-reflected).
  const int32_t flip_base = opposite ? relation.NumDistinct(b) - 1 : -1;
  auto rank_b = [&](int32_t t) {
    return flip_base < 0 ? ranks_b[t] : flip_base - ranks_b[t];
  };
  int64_t removals = 0;
  std::vector<int32_t> buffer;
  std::vector<int32_t> tails;  // patience-sorting tails of B-ranks
  for (int32_t c = 0; c < context_partition.NumClasses(); ++c) {
    auto cls = context_partition.Class(c);
    buffer.assign(cls.begin(), cls.end());
    std::sort(buffer.begin(), buffer.end(), [&](int32_t s, int32_t t) {
      if (ranks_a[s] != ranks_a[t]) return ranks_a[s] < ranks_a[t];
      return rank_b(s) < rank_b(t);
    });
    // Longest non-decreasing subsequence of B-ranks. Sorting ties in A by
    // B ascending makes within-group selections free (they are already
    // non-decreasing), so the LNDS equals the maximum swap-free subset.
    tails.clear();
    for (int32_t t : buffer) {
      const int32_t rb = rank_b(t);
      auto it = std::upper_bound(tails.begin(), tails.end(), rb);
      if (it == tails.end()) {
        tails.push_back(rb);
      } else {
        *it = rb;
      }
    }
    removals += static_cast<int64_t>(cls.size()) -
                static_cast<int64_t>(tails.size());
  }
  return removals;
}

double ConstancyError(const EncodedRelation& relation,
                      const StrippedPartition& context_partition,
                      int attribute) {
  if (relation.NumRows() == 0) return 0.0;
  return static_cast<double>(
             ConstancyRemovals(relation, context_partition, attribute)) /
         static_cast<double>(relation.NumRows());
}

double CompatibilityError(const EncodedRelation& relation,
                          const StrippedPartition& context_partition, int a,
                          int b, bool opposite) {
  if (relation.NumRows() == 0) return 0.0;
  return static_cast<double>(CompatibilityRemovals(
             relation, context_partition, a, b, opposite)) /
         static_cast<double>(relation.NumRows());
}

double CanonicalOdError(const EncodedRelation& relation,
                        const CanonicalOd& od) {
  AttributeSet context = std::holds_alternative<ConstancyOd>(od)
                             ? std::get<ConstancyOd>(od).context
                             : std::get<CompatibilityOd>(od).context;
  StrippedPartition partition;
  if (context.IsEmpty()) {
    partition = StrippedPartition::Universe(relation.NumRows());
  } else {
    std::vector<const CodeColumn*> columns;
    for (int a = context.First(); a >= 0; a = context.Next(a)) {
      columns.push_back(&relation.codes(a));
    }
    partition =
        StrippedPartition::FromCodeColumns(columns, relation.NumRows());
  }
  if (std::holds_alternative<ConstancyOd>(od)) {
    return ConstancyError(relation, partition,
                          std::get<ConstancyOd>(od).attribute);
  }
  const CompatibilityOd& c = std::get<CompatibilityOd>(od);
  return CompatibilityError(relation, partition, c.a, c.b);
}

}  // namespace fastod
