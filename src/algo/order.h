// ORDER (Langer & Naumann, VLDB Journal 2016): the prior state-of-the-art
// list-based OD discovery algorithm, reimplemented as the paper's Exp-3
// comparator.
//
// ORDER traverses the lattice of attribute *lists* (factorial in |R|).
// Visiting node [A,B,C] generates the split candidates [B,C] ↦ [A] and
// [C] ↦ [A,B] (suffix orders prefix). Candidates are validated through the
// split/swap decomposition of Theorem 1 and pruned aggressively:
//   * swap pruning  — a swap for X ↦ Y kills every prefix-extension
//     X' ↦ Y' (appending attributes can never repair a swap);
//   * split pruning — a split for X ↦ Y kills X ↦ Y' for rhs extensions Y'
//     (supersets of a non-FD rhs stay non-FDs);
//   * subtree pruning — a node none of whose candidates can still become
//     valid is not extended.
//
// Exactly as Section 4.5 of the FASTOD paper proves, this pruning makes
// ORDER *incomplete*: it cannot represent constants ([] ↦ Y), ODs with
// repeated attributes across the sides (X ↦ XY — i.e. embedded FDs), or
// same-prefix ODs (XY ↦ XZ); tests/order_test.cc demonstrates each missed
// class against FASTOD's complete output.
#ifndef FASTOD_ALGO_ORDER_H_
#define FASTOD_ALGO_ORDER_H_

#include <cstdint>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "common/timer.h"
#include "data/encode.h"
#include "data/table.h"
#include "od/list_od.h"
#include "partition/stripped_partition.h"

namespace fastod {

class OdSink;

struct OrderOptions {
  /// Abort after this many seconds (0 = no limit) — the paper aborts ORDER
  /// runs at 5 hours ("* 5h").
  double timeout_seconds = 0.0;
  /// Stop after lattice level `max_level` (list length; 0 = no limit).
  int max_level = 0;
  /// Disable the swap/split pruning rules. The paper reports that with
  /// pruning disabled ORDER becomes complete in spirit but "did not
  /// terminate within five hours in any of the tested datasets".
  bool enable_pruning = true;
  /// Streaming emission (api/od_sink.h): valid list ODs are delivered
  /// through OnListOd() as they are found. Unlike FASTOD/TANE this tees:
  /// the result vector is still populated, because ORDER consults it for
  /// its list-minimality (implication) checks.
  OdSink* sink = nullptr;
  /// Cooperative cancellation + progress, polled at level boundaries.
  ExecutionControl* control = nullptr;
};

struct OrderResult {
  /// Valid, list-minimal ODs in ORDER's own canonical form.
  std::vector<ListOd> ods;
  bool timed_out = false;
  bool cancelled = false;
  int levels_processed = 0;
  int64_t total_nodes = 0;
  int64_t candidates_checked = 0;
  int64_t candidates_pruned = 0;
  double seconds = 0.0;
};

/// Counts of the set-based canonical image of a list-OD result set
/// (Theorem 5 mapping, trivial ODs dropped, duplicates merged) — the
/// "maps to 58 set-based ODs (31 FDs and 27 OCDs)" numbers of Exp-3.
struct MappedCounts {
  int64_t num_constancy = 0;
  int64_t num_compatibility = 0;
  int64_t Total() const { return num_constancy + num_compatibility; }
};

MappedCounts MapToCanonicalCounts(const std::vector<ListOd>& ods);

class OrderBaseline {
 public:
  explicit OrderBaseline(OrderOptions options = OrderOptions());

  /// `singletons`, when given, seed the validator's context cache with
  /// prebuilt level-1 partitions (see Fastod::Discover).
  OrderResult Discover(
      const EncodedRelation& relation,
      const std::vector<StrippedPartition>* singletons = nullptr) const;
  Result<OrderResult> Discover(const Table& table) const;

 private:
  OrderOptions options_;
};

}  // namespace fastod

#endif  // FASTOD_ALGO_ORDER_H_
