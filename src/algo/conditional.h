// Conditional ODs — the paper's third future-work item (Section 7):
// "conditional ODs that hold over portions of a relation. Since
// conditional ODs allow data bindings, a large number of individual
// dependencies may hold on a table."
//
// A conditional OD (C ∈ {v1, v2, ...}) ⇒ od states that the canonical OD
// `od` holds on the sub-relation σ_{C ∈ {v...}}(r). This module provides
//  * Refine(): given an OD (typically one that fails globally) and a
//    condition attribute C, compute the exact set of C-bindings under
//    which it holds, with its support (fraction of tuples covered); and
//  * DiscoverConditional(): a pragmatic driver that scans globally-failing
//    small-context candidates against all viable condition attributes and
//    returns the conditional ODs above a support threshold — the
//    data-cleaning-oriented reading of the future-work sketch.
//
// Implementation note: od holds on σ_{C=v}(r) iff it holds within every
// equivalence class of Π_{context ∪ {C}} whose C-value is v, so one
// partition product answers all bindings of one condition attribute at
// once.
#ifndef FASTOD_ALGO_CONDITIONAL_H_
#define FASTOD_ALGO_CONDITIONAL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "data/encode.h"
#include "od/canonical_od.h"
#include "partition/stripped_partition.h"

namespace fastod {

class Schema;

/// (C ∈ bindings) ⇒ od, with bindings given as ranks of C (dense,
/// order-preserving; translate back through the relation for display).
struct ConditionalOd {
  int condition_attribute = -1;
  std::vector<int32_t> binding_ranks;  // ascending
  CanonicalOd od;
  /// Fraction of tuples whose C-value is in the bindings.
  double support = 0.0;

  std::string ToString(const Schema& schema) const;
};

struct ConditionalOdOptions {
  /// Minimum fraction of tuples the bindings must cover.
  double min_support = 0.25;
  /// Condition attributes with more distinct values than this are skipped
  /// by the discovery driver (they'd overfit row-by-row).
  int32_t max_condition_cardinality = 64;
  /// Upper bound on results from DiscoverConditional.
  int64_t max_results = 100;
};

class ConditionalOdFinder {
 public:
  /// The relation must outlive the finder. `singletons`, when given,
  /// seed the validator's context cache with prebuilt level-1 partitions
  /// (see Fastod::Discover); borrowed, must outlive the finder.
  explicit ConditionalOdFinder(
      const EncodedRelation* relation,
      const std::vector<StrippedPartition>* singletons = nullptr);

  /// The exact binding set of `condition_attribute` under which `od`
  /// holds, or nullopt if support falls below options.min_support or the
  /// condition attribute appears in the OD (no refinement possible).
  std::optional<ConditionalOd> Refine(const CanonicalOd& od,
                                      int condition_attribute,
                                      const ConditionalOdOptions& options =
                                          ConditionalOdOptions());

  /// Scans the natural small candidates — {}: A ~ B pairs and {A}: [] -> B
  /// FDs that fail globally — against every viable condition attribute.
  /// Results are sorted by support (descending), deduplicated per
  /// (od, condition) with maximal bindings by construction.
  std::vector<ConditionalOd> DiscoverConditional(
      const ConditionalOdOptions& options = ConditionalOdOptions());

 private:
  const EncodedRelation* relation_;
  const std::vector<StrippedPartition>* singletons_;
};

}  // namespace fastod

#endif  // FASTOD_ALGO_CONDITIONAL_H_
