#include "algo/brute_force_discovery.h"

#include "algo/approximate.h"
#include "common/macros.h"
#include "partition/stripped_partition.h"
#include "validate/brute_force.h"

namespace fastod {

namespace {

// Index into flat (context-mask × attribute) validity tables.
size_t CellIndex(uint64_t mask, int a, int m) {
  return static_cast<size_t>(mask) * m + a;
}
size_t PairIndex(uint64_t mask, int a, int b, int m) {
  return (static_cast<size_t>(mask) * m + a) * m + b;
}

}  // namespace

BruteForceDiscoveryResult BruteForceDiscoverOds(
    const EncodedRelation& relation, double max_error,
    bool discover_bidirectional,
    const std::vector<StrippedPartition>* singletons) {
  const int m = relation.NumAttributes();
  FASTOD_CHECK(m <= 16);
  // The bidirectional oracle is implemented for exact validity only.
  FASTOD_CHECK(!(discover_bidirectional && max_error > 0.0));
  const uint64_t num_contexts = uint64_t{1} << m;

  // Phase 1: validity of every candidate, straight from the definitions
  // (exact mode) or from the g3 removal errors (approximate mode).
  std::vector<uint8_t> const_valid(num_contexts * m, 0);
  std::vector<uint8_t> compat_valid(num_contexts * m * m, 0);
  for (uint64_t mask = 0; mask < num_contexts; ++mask) {
    AttributeSet context(mask);
    StrippedPartition partition;
    if (max_error > 0.0) {
      if (context.IsEmpty()) {
        partition = StrippedPartition::Universe(relation.NumRows());
      } else if (context.Count() == 1 && singletons != nullptr) {
        partition = (*singletons)[context.First()];
      } else {
        std::vector<const CodeColumn*> columns;
        for (int a = context.First(); a >= 0; a = context.Next(a)) {
          columns.push_back(&relation.codes(a));
        }
        partition =
            StrippedPartition::FromCodeColumns(columns, relation.NumRows());
      }
    }
    for (int a = 0; a < m; ++a) {
      bool valid = max_error > 0.0
                       ? ConstancyError(relation, partition, a) <= max_error
                       : BruteIsConstant(relation, context, a);
      const_valid[CellIndex(mask, a, m)] = valid ? 1 : 0;
    }
    for (int a = 0; a < m; ++a) {
      for (int b = a + 1; b < m; ++b) {
        bool valid =
            max_error > 0.0
                ? CompatibilityError(relation, partition, a, b) <= max_error
                : BruteIsOrderCompatible(relation, context, a, b);
        compat_valid[PairIndex(mask, a, b, m)] = valid ? 1 : 0;
      }
    }
  }
  // Either-polarity validity table for bidirectional mode: descending
  // compatibility checked only where ascending fails (ascending wins ties).
  std::vector<uint8_t> desc_valid;
  if (discover_bidirectional) {
    desc_valid.assign(num_contexts * m * m, 0);
    for (uint64_t mask = 0; mask < num_contexts; ++mask) {
      AttributeSet context(mask);
      for (int a = 0; a < m; ++a) {
        for (int b = a + 1; b < m; ++b) {
          desc_valid[PairIndex(mask, a, b, m)] =
              BruteIsBidiOrderCompatible(relation, context, a, b) ? 1 : 0;
        }
      }
    }
  }

  // Phase 2: minimality per Section 4.1.
  BruteForceDiscoveryResult result;
  for (uint64_t mask = 0; mask < num_contexts; ++mask) {
    AttributeSet context(mask);
    for (int a = 0; a < m; ++a) {
      if (context.Contains(a)) continue;  // trivial (Reflexivity)
      if (!const_valid[CellIndex(mask, a, m)]) continue;
      ++result.all_valid_constancy;
      bool minimal = true;
      // Proper subsets of the context via submask enumeration (the empty
      // context has none).
      if (mask != 0) {
        for (uint64_t sub = (mask - 1) & mask; minimal;
             sub = (sub - 1) & mask) {
          if (const_valid[CellIndex(sub, a, m)]) minimal = false;
          if (sub == 0) break;
        }
      }
      if (minimal) result.constancy_ods.push_back(ConstancyOd{context, a});
    }
    for (int a = 0; a < m; ++a) {
      for (int b = a + 1; b < m; ++b) {
        if (context.Contains(a) || context.Contains(b)) continue;  // trivial
        const bool asc = compat_valid[PairIndex(mask, a, b, m)] != 0;
        const bool desc = discover_bidirectional &&
                          desc_valid[PairIndex(mask, a, b, m)] != 0;
        if (asc) ++result.all_valid_compatibility;
        if (!asc && !desc) continue;
        // Propagate: constancy of either side in the same context makes
        // the compatibility OD non-minimal.
        if (const_valid[CellIndex(mask, a, m)] ||
            const_valid[CellIndex(mask, b, m)]) {
          continue;
        }
        // Minimal iff no proper subset context resolves the pair (in any
        // enabled polarity — a pair resolved below never reappears).
        bool minimal = true;
        if (mask != 0) {
          for (uint64_t sub = (mask - 1) & mask; minimal;
               sub = (sub - 1) & mask) {
            if (compat_valid[PairIndex(sub, a, b, m)] ||
                (discover_bidirectional &&
                 desc_valid[PairIndex(sub, a, b, m)])) {
              minimal = false;
            }
            if (sub == 0) break;
          }
        }
        if (minimal) {
          if (asc) {
            result.compatibility_ods.push_back(
                CompatibilityOd(context, a, b));
          } else {
            result.bidirectional_ods.push_back(
                BidiCompatibilityOd(context, a, b));
          }
        }
      }
    }
  }
  return result;
}

}  // namespace fastod
