// Approximate ODs — the paper's Section 7 future-work extension.
//
// "We will also consider the notion of approximate ODs that almost hold
// over a relation instance within a specified threshold." We adopt the
// standard g3 removal semantics (as TANE does for approximate FDs): the
// error of a dependency is the minimum fraction of tuples whose removal
// makes it hold exactly.
//
//   * ConstancyError(X: [] -> A): within each class of Π_X keep only the
//     most frequent A-value; the error is (removed tuples) / n.
//   * CompatibilityError(X: A ~ B): within each class keep a maximum
//     swap-free subset; with tuples sorted by (A-rank, B-rank), a subset is
//     swap-free iff its B-ranks are non-decreasing *across strictly
//     increasing A-groups* — which reduces exactly to the longest
//     non-decreasing subsequence of B-ranks (ties inside an A-group are
//     free and are neutralized by the secondary B sort). O(c log c) per
//     class via patience sorting.
//
// Both errors are monotone non-increasing as the context grows (a removal
// set for Y also repairs any X ⊇ Y, because Π_X refines Π_Y), so the
// candidate-set pruning of FASTOD remains sound under threshold validity —
// Fastod exposes this through FastodOptions-like ApproximateFastodOptions.
#ifndef FASTOD_ALGO_APPROXIMATE_H_
#define FASTOD_ALGO_APPROXIMATE_H_

#include <cstdint>

#include "common/status.h"
#include "data/encode.h"
#include "od/canonical_od.h"
#include "partition/stripped_partition.h"

namespace fastod {

/// Minimum number of tuples to remove so that A is constant within every
/// class of `context_partition`.
int64_t ConstancyRemovals(const EncodedRelation& relation,
                          const StrippedPartition& context_partition,
                          int attribute);

/// Minimum number of tuples to remove so that no class of
/// `context_partition` contains a swap between `a` and `b`. With
/// opposite = true (bidirectional extension) the target is descending
/// compatibility: B must be non-increasing across strictly increasing A.
int64_t CompatibilityRemovals(const EncodedRelation& relation,
                              const StrippedPartition& context_partition,
                              int a, int b, bool opposite = false);

/// g3 errors: removals / NumRows() (0 for an empty relation).
double ConstancyError(const EncodedRelation& relation,
                      const StrippedPartition& context_partition,
                      int attribute);
double CompatibilityError(const EncodedRelation& relation,
                          const StrippedPartition& context_partition, int a,
                          int b, bool opposite = false);

/// Error of a canonical OD with the context partition built on demand.
double CanonicalOdError(const EncodedRelation& relation,
                        const CanonicalOd& od);

}  // namespace fastod

#endif  // FASTOD_ALGO_APPROXIMATE_H_
