// Exhaustive canonical-OD discovery — the correctness oracle.
//
// Enumerates every context X ⊆ R and every canonical OD shape, decides
// validity with the O(n^2) definitional checks, and applies the paper's
// minimality definitions (Section 4.1) verbatim:
//   * X: [] -> A is minimal iff it is non-trivial, valid, and no proper
//     subset context Y ⊂ X has Y: [] -> A valid (Augmentation-I);
//   * X: A ~ B is minimal iff it is non-trivial, valid, no Y ⊂ X has
//     Y: A ~ B valid (Augmentation-II), and neither X: [] -> A nor
//     X: [] -> B is valid (Propagate).
//
// Exponential-times-quadratic; use only on tiny relations. The property
// tests compare FASTOD's output against this oracle (completeness +
// minimality, Theorem 8) and FASTOD-NoPruning's counts against the
// all-valid counts.
#ifndef FASTOD_ALGO_BRUTE_FORCE_DISCOVERY_H_
#define FASTOD_ALGO_BRUTE_FORCE_DISCOVERY_H_

#include <cstdint>
#include <vector>

#include "data/encode.h"
#include "od/bidirectional.h"
#include "od/canonical_od.h"
#include "partition/stripped_partition.h"

namespace fastod {

struct BruteForceDiscoveryResult {
  std::vector<ConstancyOd> constancy_ods;
  std::vector<CompatibilityOd> compatibility_ods;
  /// Only with discover_bidirectional: opposite-polarity OCDs, reported at
  /// contexts where ascending fails, descending holds, no proper subset
  /// context holds in either polarity, and neither endpoint is constant.
  std::vector<BidiCompatibilityOd> bidirectional_ods;
  /// Counts of *all valid non-trivial* (not only minimal) canonical ODs,
  /// for cross-checking the no-pruning ablation.
  int64_t all_valid_constancy = 0;
  int64_t all_valid_compatibility = 0;
};

/// Requires relation.NumAttributes() <= 16 (2^16 contexts already stretch
/// an oracle's welcome). With max_error > 0, validity means "g3 removal
/// error <= max_error" (the approximate-discovery semantics), so the
/// result is the oracle for Fastod with FastodOptions::max_error set.
/// With discover_bidirectional, pair minimality uses either-polarity
/// subset validity and polarity resolution prefers ascending — the oracle
/// for FastodOptions::discover_bidirectional. (Note: enabling the flag can
/// *shrink* the ascending compatibility set: a pair resolved descending at
/// a small context is never re-reported ascending at a larger one.)
/// `singletons`, when given, are prebuilt level-1 partitions used for
/// single-attribute contexts in approximate mode (see Fastod::Discover).
BruteForceDiscoveryResult BruteForceDiscoverOds(
    const EncodedRelation& relation, double max_error = 0.0,
    bool discover_bidirectional = false,
    const std::vector<StrippedPartition>* singletons = nullptr);

}  // namespace fastod

#endif  // FASTOD_ALGO_BRUTE_FORCE_DISCOVERY_H_
