// FASTOD (Section 4 of the paper): complete, minimal discovery of set-based
// canonical ODs by a level-wise walk of the set-containment lattice.
//
// At lattice node X (level l = |X|) the algorithm checks exactly the
// non-trivial canonical shapes
//     X\A: [] -> A        for A in X            (constancy / FD side)
//     X\{A,B}: A ~ B      for {A,B} ⊆ X, A≠B    (order-compatibility side)
// guided by the candidate sets Cc+(X) (Definition 7) and Cs+(X)
// (Definition 8), which encode minimality with respect to the axioms
// (Lemmas 5-8). Levels are pruned per Lemma 11, keys per Lemmas 12-13, and
// validation uses stripped partitions (Section 4.6).
//
// Every pruning rule is individually switchable via FastodOptions, which is
// how the paper's Exp-5/Exp-6 ("FASTOD-NoPruning") ablations are produced.
#ifndef FASTOD_ALGO_FASTOD_H_
#define FASTOD_ALGO_FASTOD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "common/timer.h"
#include "data/encode.h"
#include "data/table.h"
#include "od/bidirectional.h"
#include "od/canonical_od.h"
#include "partition/sorted_partition.h"

namespace fastod {

class OdSink;

struct FastodOptions {
  /// Use the candidate sets Cc+/Cs+ to check only potentially-minimal ODs
  /// and emit a minimal cover (Sections 4.2/4.4). When false, every
  /// non-trivial OD at every node is validated and every valid one counted,
  /// minimal or not — the "FASTOD-NoPruning" configuration of Exp-5/6.
  bool minimality_pruning = true;

  /// Delete nodes with empty candidate sets (Lemma 11, Algorithm 4).
  /// Only meaningful when minimality_pruning is on.
  bool level_pruning = true;

  /// Skip validation scans when the context partition certifies a
  /// (super)key (Lemmas 12-13). Only meaningful when minimality_pruning is
  /// on (without candidate sets there is nothing sound to skip).
  bool key_pruning = true;

  /// Swap-check strategy (Section 4.6; see partition/sorted_partition.h).
  SwapCheckMethod swap_method = SwapCheckMethod::kAuto;

  /// Keep the discovered ODs in the result (true) or only count them
  /// (false). Counting mode exists because the no-pruning ablation can
  /// produce tens of millions of non-minimal ODs (Exp-6).
  bool emit_ods = true;

  /// Stop after processing lattice level `max_level` (0 = no limit).
  int max_level = 0;

  /// Abort after this many seconds, returning partial results flagged
  /// timed_out (0 = no limit). Mirrors the paper's 5-hour cutoff.
  double timeout_seconds = 0.0;

  /// Approximate discovery (the paper's future-work extension, algo/
  /// approximate.h): accept an OD when its g3 removal error is at most
  /// this threshold. 0 = exact discovery. Candidate pruning stays sound
  /// because both error measures are monotone in the context.
  double max_error = 0.0;

  /// Bidirectional extension (future-work item 1, od/bidirectional.h):
  /// when an ascending compatibility check X: A ~ B fails, additionally
  /// try the opposite polarity (A ascending orders B descending) and emit
  /// it as a BidiCompatibilityOd. Polarity resolution prefers ascending;
  /// once either polarity holds for a pair, the pair leaves Cs+ — so each
  /// pair is reported at its minimal context with its first-holding
  /// polarity.
  bool discover_bidirectional = false;

  /// Record per-level statistics (Exp-7).
  bool collect_level_stats = true;

  /// Number of worker threads. 1 = serial level-wise walk. With more
  /// threads the run switches to the dependency-tracking task graph
  /// (common/task_graph.h): one task per lattice node, runnable the
  /// moment all of the node's (l-1)-subsets have finished alive — its
  /// parents' stripped partitions then exist — scheduled work-stealing
  /// with no barrier between levels. Output is bit-identical across all
  /// thread counts: per-node outcomes are buffered and emitted by the
  /// level cascade in canonical (sequential) node order.
  int num_threads = 1;

  /// Streaming emission target (api/od_sink.h). When set, every
  /// discovered OD is delivered to the sink, in the same deterministic
  /// order the result vectors hold. Streaming and materialization are
  /// independent: emit_ods still controls whether the result vectors are
  /// filled, so a server can stream a run *and* serve its full report
  /// afterwards, while the no-pruning ablation's tens of millions of ODs
  /// are consumed with sink + emit_ods=false in O(1) memory. Must
  /// outlive the discovery run.
  OdSink* sink = nullptr;

  /// Cooperative cancellation + progress (common/cancellation.h), polled
  /// at the same cadence as the timeout deadline. Must outlive the run.
  ExecutionControl* control = nullptr;

};

/// Telemetry for one lattice level (drives Figure 7).
struct FastodLevelStats {
  int level = 0;
  int64_t nodes = 0;              // nodes processed at this level
  int64_t nodes_pruned = 0;       // nodes deleted by Lemma 11 afterwards
  int64_t constancy_checks = 0;   // FD-side validations performed
  int64_t swap_checks = 0;        // OCD-side validations performed
  int64_t key_prune_hits = 0;     // validations skipped via Lemmas 12-13
  int64_t constancy_found = 0;
  int64_t compatibility_found = 0;
  int64_t bidirectional_found = 0;
  double seconds = 0.0;
  /// Task-graph runs only: fraction [0,1] of the worker-party's wall
  /// time spent executing this level's node tasks during the level's
  /// span. Because levels pipeline (a child may start before its
  /// parents' level finishes emitting), per-level occupancies can sum
  /// past what a barriered schedule could reach. 0 in serial runs.
  double occupancy = 0.0;
};

struct FastodResult {
  /// Minimal constancy ODs X: [] -> A (the paper's "FDs"); populated when
  /// emit_ods is set.
  std::vector<ConstancyOd> constancy_ods;
  /// Minimal order-compatibility ODs X: A ~ B (the paper's "OCDs").
  std::vector<CompatibilityOd> compatibility_ods;
  /// Opposite-polarity OCDs X: A ~ B-descending (bidirectional extension;
  /// empty unless FastodOptions::discover_bidirectional).
  std::vector<BidiCompatibilityOd> bidirectional_ods;

  /// Totals, valid in both emit and count-only modes.
  int64_t num_constancy = 0;
  int64_t num_compatibility = 0;
  int64_t num_bidirectional = 0;
  int64_t NumOds() const {
    return num_constancy + num_compatibility + num_bidirectional;
  }

  bool timed_out = false;
  /// True when the run stopped early because FastodOptions::control
  /// requested cancellation; results are the partial output so far.
  bool cancelled = false;
  int levels_processed = 0;
  int64_t total_nodes = 0;
  /// PartitionCache traffic of the run: lookups served (gets) vs
  /// partitions built or copied in (puts) — the reuse ratio the
  /// observability layer reports per session.
  int64_t partition_cache_gets = 0;
  int64_t partition_cache_puts = 0;
  /// Task-graph scheduling telemetry (num_threads > 1; all 0 when the
  /// serial path ran). ready counts lattice nodes whose dependencies
  /// resolved (all (l-1)-subsets finished alive), spawned counts tasks
  /// enqueued on the graph, stolen counts tasks a worker took from
  /// another worker's deque. Published to the obs registry as
  /// fastod_tasks_{ready,spawned,stolen}_total by the engine adapter.
  int64_t tasks_ready = 0;
  int64_t tasks_spawned = 0;
  int64_t tasks_stolen = 0;
  double seconds = 0.0;
  std::vector<FastodLevelStats> level_stats;

  /// "17 (16 + 1)" — the figure-caption rendering used in the paper.
  std::string CountsToString() const;
};

class Fastod {
 public:
  explicit Fastod(FastodOptions options = FastodOptions());

  /// Discovers the complete, minimal set of canonical ODs of `relation`.
  /// `singletons`, when given, are prebuilt level-1 partitions Π*_{A},
  /// one per attribute (data/dataset_store.h builds them once per
  /// dataset; Algorithm::BindDataset passes them here). Level
  /// initialization copies these instead of recomputing ForAttribute —
  /// the partition half of load-once/discover-many. Borrowed; must match
  /// the relation exactly and outlive the call.
  FastodResult Discover(
      const EncodedRelation& relation,
      const std::vector<StrippedPartition>* singletons = nullptr) const;

  /// Convenience: encodes the table first (fails if > 64 attributes).
  Result<FastodResult> Discover(const Table& table) const;

  const FastodOptions& options() const { return options_; }

 private:
  FastodOptions options_;
};

}  // namespace fastod

#endif  // FASTOD_ALGO_FASTOD_H_
