// Violation reporting for data cleaning (Section 1.1 / Section 2.3).
//
// ODs "describe intended semantics and business rules; their violations
// point out possible data errors". ViolationScanner finds the concrete
// tuple pairs that violate a dependency: *splits* (Definition 4 — equal
// context, different consequent) and *swaps* (Definition 5 — ordered one
// way on A, the opposite way on B). The data-cleaning example application
// ranks dirty tuples by how many violations they participate in.
#ifndef FASTOD_VALIDATE_VIOLATION_SCANNER_H_
#define FASTOD_VALIDATE_VIOLATION_SCANNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/encode.h"
#include "od/canonical_od.h"
#include "od/list_od.h"
#include "partition/stripped_partition.h"

namespace fastod {

enum class ViolationKind { kSplit, kSwap };

struct Violation {
  ViolationKind kind;
  int64_t tuple_s;
  int64_t tuple_t;

  std::string ToString() const;
};

struct ScanOptions {
  /// Stop after this many violations (0 = unlimited).
  int64_t max_violations = 1000;
  /// Delta-limited scanning for incremental re-validation (< 0 = off):
  /// skip every context class whose tuples all lie before this row index.
  /// Sound when rows [0, delta_start) satisfied the dependency — then any
  /// violating pair involves at least one appended tuple, and a class
  /// without appended tuples cannot contain one. Classes that do touch
  /// the delta are scanned in full, so reported pairs may still be two
  /// old tuples split/swapped relative to each other only via the class
  /// structure; with an invalid prefix the scan is merely incomplete,
  /// never wrong about the pairs it reports.
  int64_t delta_start = -1;
};

class ViolationScanner {
 public:
  explicit ViolationScanner(const EncodedRelation* relation);

  /// Split pairs violating X: [] -> A.
  std::vector<Violation> ScanConstancy(AttributeSet context, int attribute,
                                       const ScanOptions& options = {});

  /// Swap pairs violating X: A ~ B.
  std::vector<Violation> ScanCompatibility(AttributeSet context, int a, int b,
                                           const ScanOptions& options = {});

  /// Same scans against a caller-prebuilt partition of the context —
  /// for callers (the incremental engine's re-validation pass) that
  /// check many dependencies sharing a context and would otherwise pay
  /// the partition build per dependency.
  std::vector<Violation> ScanConstancy(const StrippedPartition& context,
                                       int attribute,
                                       const ScanOptions& options = {});
  std::vector<Violation> ScanCompatibility(const StrippedPartition& context,
                                           int a, int b,
                                           const ScanOptions& options = {});

  /// The partition the context-taking scans build internally: one class
  /// per distinct context value (singleton classes stripped; the empty
  /// context is the universe class).
  StrippedPartition BuildContextPartition(AttributeSet context) const;

  std::vector<Violation> Scan(const CanonicalOd& od,
                              const ScanOptions& options = {});

  /// Violations of a list-based OD: the union of violations of its
  /// canonical image (Theorem 5), deduplicated by tuple pair.
  std::vector<Violation> Scan(const ListOd& od,
                              const ScanOptions& options = {});

  /// Per-tuple violation participation counts — a simple dirtiness score.
  std::vector<int64_t> TupleViolationCounts(
      const std::vector<Violation>& violations) const;

 private:
  const EncodedRelation* relation_;
};

}  // namespace fastod

#endif  // FASTOD_VALIDATE_VIOLATION_SCANNER_H_
