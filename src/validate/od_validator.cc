#include "validate/od_validator.h"

#include <algorithm>
#include <numeric>

namespace fastod {

namespace {

// Lexicographic three-way comparison of tuples s and t on `spec`.
int CompareLex(const EncodedRelation& rel, const OrderSpec& spec, int32_t s,
               int32_t t) {
  for (int a : spec) {
    int32_t rs = rel.rank(s, a);
    int32_t rt = rel.rank(t, a);
    if (rs != rt) return rs < rt ? -1 : 1;
  }
  return 0;
}

// Directional lexicographic comparison (bidirectional extension):
// descending attributes reverse the per-attribute comparison.
int CompareLexDirected(const EncodedRelation& rel, const DirectedSpec& spec,
                       int32_t s, int32_t t) {
  for (const DirectedAttribute& da : spec) {
    int32_t rs = rel.rank(s, da.attr);
    int32_t rt = rel.rank(t, da.attr);
    if (rs != rt) {
      bool less = rs < rt;
      if (da.direction == SortDirection::kDesc) less = !less;
      return less ? -1 : 1;
    }
  }
  return 0;
}

}  // namespace

OdValidator::OdValidator(const EncodedRelation* relation,
                         const std::vector<StrippedPartition>* singletons)
    : relation_(relation),
      sorted_(*relation),
      swap_checker_(relation, &sorted_) {
  FASTOD_CHECK(relation_ != nullptr);
  if (singletons != nullptr) {
    // Prebuilt level-1 partitions (a bound LoadedDataset): seed the
    // context cache so every singleton context is a lookup, not a build.
    FASTOD_CHECK(static_cast<int>(singletons->size()) ==
                 relation_->NumAttributes());
    for (int a = 0; a < relation_->NumAttributes(); ++a) {
      context_cache_.emplace(AttributeSet::Single(a), (*singletons)[a]);
    }
  }
}

const StrippedPartition& OdValidator::ContextPartition(AttributeSet context) {
  auto it = context_cache_.find(context);
  if (it != context_cache_.end()) return it->second;
  StrippedPartition partition;
  if (context.IsEmpty()) {
    partition = StrippedPartition::Universe(relation_->NumRows());
  } else {
    // Refine from the largest cached proper subset — callers walking a
    // lattice (minimality probes, the incremental engine's escalation
    // BFS) ask for a context right after its parent, so this is usually
    // one product instead of |X| - 1 — then fold in the missing
    // singletons.
    AttributeSet covered;
    const StrippedPartition* seed = nullptr;
    for (const auto& [cached_set, cached_partition] : context_cache_) {
      if (cached_set.IsEmpty() || !context.ContainsAll(cached_set)) continue;
      if (seed == nullptr || cached_set.Count() > covered.Count()) {
        covered = cached_set;
        seed = &cached_partition;
      }
    }
    if (seed != nullptr) {
      partition = *seed;
    } else {
      int first = context.First();
      partition = StrippedPartition::ForAttribute(relation_->codes(first));
      covered = AttributeSet::Single(first);
    }
    for (int a = context.First(); a >= 0; a = context.Next(a)) {
      if (covered.Contains(a)) continue;
      partition = partition.Product(
          StrippedPartition::ForAttribute(relation_->codes(a)));
    }
  }
  auto [pos, inserted] = context_cache_.emplace(context, std::move(partition));
  return pos->second;
}

bool OdValidator::IsConstant(AttributeSet context, int attribute) {
  const StrippedPartition& partition = ContextPartition(context);
  const CodeColumn& ranks = relation_->codes(attribute);
  for (int32_t c = 0; c < partition.NumClasses(); ++c) {
    auto cls = partition.Class(c);
    int32_t first_rank = ranks[cls[0]];
    for (int32_t t : cls) {
      if (ranks[t] != first_rank) return false;
    }
  }
  return true;
}

bool OdValidator::IsOrderCompatible(AttributeSet context, int a, int b) {
  if (a == b) return true;  // Identity axiom
  const StrippedPartition& partition = ContextPartition(context);
  return swap_checker_.IsOrderCompatible(partition, a, b);
}

bool OdValidator::Holds(const CanonicalOd& od) {
  if (std::holds_alternative<ConstancyOd>(od)) {
    const ConstancyOd& c = std::get<ConstancyOd>(od);
    return IsConstant(c.context, c.attribute);
  }
  const CompatibilityOd& c = std::get<CompatibilityOd>(od);
  return IsOrderCompatible(c.context, c.a, c.b);
}

bool OdValidator::Holds(const ListOd& od) {
  // X ↦ Y iff no pair s ≺_X t with t ≺_Y s. Sort by X; sweep X-groups in
  // ascending order, tracking the Y-maximum tuple over strictly smaller
  // X-groups; a violation is a tuple Y-below that running maximum.
  const int64_t n = relation_->NumRows();
  std::vector<int32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int32_t s, int32_t t) {
    int cmp = CompareLex(*relation_, od.lhs, s, t);
    if (cmp != 0) return cmp < 0;
    return s < t;
  });
  int32_t run_max = -1;  // tuple achieving the Y-maximum so far, -1 = none
  int64_t i = 0;
  while (i < n) {
    // The current X-group is [i, j).
    int64_t j = i + 1;
    while (j < n &&
           CompareLex(*relation_, od.lhs, order[i], order[j]) == 0) {
      ++j;
    }
    // Tuples equal on X must be equal on Y (otherwise a split: s ⪯_X t and
    // t ⪯_X s would demand Y-equality).
    for (int64_t k = i + 1; k < j; ++k) {
      if (CompareLex(*relation_, od.rhs, order[i], order[k]) != 0) {
        return false;
      }
    }
    // Cross-group: strictly X-smaller tuples must not be Y-greater (swap).
    int32_t representative = order[i];
    if (run_max >= 0 &&
        CompareLex(*relation_, od.rhs, representative, run_max) < 0) {
      return false;
    }
    run_max = representative;  // groups are Y-constant, any member works
    i = j;
  }
  return true;
}

bool OdValidator::IsBidiOrderCompatible(AttributeSet context, int a, int b) {
  if (a == b) {
    // A ~ A desc only holds when A is constant within every class.
    return IsConstant(context, a);
  }
  const StrippedPartition& partition = ContextPartition(context);
  return swap_checker_.IsOrderCompatibleDirected(partition, a, b,
                                                 /*opposite=*/true);
}

bool OdValidator::Holds(const BidirectionalListOd& od) {
  // Same sweep as the ascending variant, under the directional
  // lexicographic order.
  const int64_t n = relation_->NumRows();
  std::vector<int32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int32_t s, int32_t t) {
    int cmp = CompareLexDirected(*relation_, od.lhs, s, t);
    if (cmp != 0) return cmp < 0;
    return s < t;
  });
  int32_t run_max = -1;
  int64_t i = 0;
  while (i < n) {
    int64_t j = i + 1;
    while (j < n && CompareLexDirected(*relation_, od.lhs, order[i],
                                       order[j]) == 0) {
      ++j;
    }
    for (int64_t k = i + 1; k < j; ++k) {
      if (CompareLexDirected(*relation_, od.rhs, order[i], order[k]) != 0) {
        return false;  // split
      }
    }
    int32_t representative = order[i];
    if (run_max >= 0 &&
        CompareLexDirected(*relation_, od.rhs, representative, run_max) <
            0) {
      return false;  // swap
    }
    run_max = representative;
    i = j;
  }
  return true;
}

bool OdValidator::AreOrderCompatible(const OrderSpec& lhs,
                                     const OrderSpec& rhs) {
  // X ~ Y is defined as XY ↔ YX.
  OrderSpec xy = lhs;
  xy.insert(xy.end(), rhs.begin(), rhs.end());
  OrderSpec yx = rhs;
  yx.insert(yx.end(), lhs.begin(), lhs.end());
  return AreOrderEquivalent(xy, yx);
}

bool OdValidator::AreOrderEquivalent(const OrderSpec& lhs,
                                     const OrderSpec& rhs) {
  return Holds(ListOd{lhs, rhs}) && Holds(ListOd{rhs, lhs});
}

}  // namespace fastod
