#include "validate/brute_force.h"

namespace fastod {

namespace {

// Equality of two tuples on an attribute set.
bool EqualOnSet(const EncodedRelation& rel, AttributeSet set, int64_t r,
                int64_t s) {
  for (int a = set.First(); a >= 0; a = set.Next(a)) {
    if (rel.rank(r, a) != rel.rank(s, a)) return false;
  }
  return true;
}

}  // namespace

bool TuplePrecedesEq(const EncodedRelation& rel, const OrderSpec& spec,
                     int64_t r, int64_t s) {
  // Definition 1: [] precedes everything; otherwise compare the head and
  // recurse on ties. Implemented iteratively.
  for (int a : spec) {
    int32_t rr = rel.rank(r, a);
    int32_t rs = rel.rank(s, a);
    if (rr < rs) return true;
    if (rr > rs) return false;
  }
  return true;  // all equal (or empty spec)
}

bool TuplePrecedesStrict(const EncodedRelation& rel, const OrderSpec& spec,
                         int64_t r, int64_t s) {
  return TuplePrecedesEq(rel, spec, r, s) &&
         !TuplePrecedesEq(rel, spec, s, r);
}

bool BruteHolds(const EncodedRelation& rel, const ListOd& od) {
  const int64_t n = rel.NumRows();
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t s = 0; s < n; ++s) {
      if (TuplePrecedesEq(rel, od.lhs, r, s) &&
          !TuplePrecedesEq(rel, od.rhs, r, s)) {
        return false;
      }
    }
  }
  return true;
}

bool BruteIsConstant(const EncodedRelation& rel, AttributeSet context,
                     int attribute) {
  const int64_t n = rel.NumRows();
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t s = r + 1; s < n; ++s) {
      if (EqualOnSet(rel, context, r, s) &&
          rel.rank(r, attribute) != rel.rank(s, attribute)) {
        return false;
      }
    }
  }
  return true;
}

bool BruteIsOrderCompatible(const EncodedRelation& rel, AttributeSet context,
                            int a, int b) {
  const int64_t n = rel.NumRows();
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t s = 0; s < n; ++s) {
      if (!EqualOnSet(rel, context, r, s)) continue;
      // Swap (Definition 5): r ≺_A s but s ≺_B r.
      if (rel.rank(r, a) < rel.rank(s, a) &&
          rel.rank(s, b) < rel.rank(r, b)) {
        return false;
      }
    }
  }
  return true;
}

bool BruteIsBidiOrderCompatible(const EncodedRelation& rel,
                                AttributeSet context, int a, int b) {
  const int64_t n = rel.NumRows();
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t s = 0; s < n; ++s) {
      if (!EqualOnSet(rel, context, r, s)) continue;
      // Violation: both attributes strictly increase together.
      if (rel.rank(r, a) < rel.rank(s, a) &&
          rel.rank(r, b) < rel.rank(s, b)) {
        return false;
      }
    }
  }
  return true;
}

bool BruteHolds(const EncodedRelation& rel, const CanonicalOd& od) {
  if (std::holds_alternative<ConstancyOd>(od)) {
    const ConstancyOd& c = std::get<ConstancyOd>(od);
    return BruteIsConstant(rel, c.context, c.attribute);
  }
  const CompatibilityOd& c = std::get<CompatibilityOd>(od);
  return BruteIsOrderCompatible(rel, c.context, c.a, c.b);
}

}  // namespace fastod
