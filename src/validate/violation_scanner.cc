#include "validate/violation_scanner.h"

#include <algorithm>
#include <set>

#include "od/mapping.h"
#include "partition/stripped_partition.h"

namespace fastod {

std::string Violation::ToString() const {
  return std::string(kind == ViolationKind::kSplit ? "split" : "swap") +
         "(t" + std::to_string(tuple_s) + ", t" + std::to_string(tuple_t) +
         ")";
}

ViolationScanner::ViolationScanner(const EncodedRelation* relation)
    : relation_(relation) {
  FASTOD_CHECK(relation_ != nullptr);
}

StrippedPartition ViolationScanner::BuildContextPartition(
    AttributeSet context) const {
  const EncodedRelation& rel = *relation_;
  if (context.IsEmpty()) return StrippedPartition::Universe(rel.NumRows());
  if (context.Count() == 1) {
    return StrippedPartition::ForAttribute(rel.codes(context.First()));
  }
  std::vector<const CodeColumn*> columns;
  for (int a = context.First(); a >= 0; a = context.Next(a)) {
    columns.push_back(&rel.codes(a));
  }
  return StrippedPartition::FromCodeColumns(columns, rel.NumRows());
}

namespace {

bool Full(const std::vector<Violation>& v, const ScanOptions& options) {
  return options.max_violations > 0 &&
         static_cast<int64_t>(v.size()) >= options.max_violations;
}

/// Delta-limited scans skip classes with no tuple at or past delta_start.
/// Tuple ids within a class are ascending, so the last element decides.
template <typename ClassSpan>
bool SkipForDelta(const ClassSpan& cls, const ScanOptions& options) {
  return options.delta_start >= 0 && !cls.empty() &&
         static_cast<int64_t>(cls[cls.size() - 1]) < options.delta_start;
}

}  // namespace

std::vector<Violation> ViolationScanner::ScanConstancy(
    AttributeSet context, int attribute, const ScanOptions& options) {
  return ScanConstancy(BuildContextPartition(context), attribute, options);
}

std::vector<Violation> ViolationScanner::ScanConstancy(
    const StrippedPartition& partition, int attribute,
    const ScanOptions& options) {
  std::vector<Violation> out;
  const CodeColumn& ranks = relation_->codes(attribute);
  for (int32_t c = 0; c < partition.NumClasses() && !Full(out, options);
       ++c) {
    auto cls = partition.Class(c);
    if (SkipForDelta(cls, options)) continue;
    // Group class members by the attribute's rank; any two members in
    // different groups form a split pair. Report pairs against the first
    // member of the first differing group to keep output size linear-ish.
    for (size_t i = 1; i < cls.size() && !Full(out, options); ++i) {
      if (ranks[cls[i]] != ranks[cls[0]]) {
        out.push_back(Violation{ViolationKind::kSplit, cls[0], cls[i]});
      }
    }
  }
  return out;
}

std::vector<Violation> ViolationScanner::ScanCompatibility(
    AttributeSet context, int a, int b, const ScanOptions& options) {
  return ScanCompatibility(BuildContextPartition(context), a, b, options);
}

std::vector<Violation> ViolationScanner::ScanCompatibility(
    const StrippedPartition& partition, int a, int b,
    const ScanOptions& options) {
  std::vector<Violation> out;
  const CodeColumn& ranks_a = relation_->codes(a);
  const CodeColumn& ranks_b = relation_->codes(b);
  std::vector<int32_t> buffer;
  for (int32_t c = 0; c < partition.NumClasses() && !Full(out, options);
       ++c) {
    auto cls = partition.Class(c);
    if (SkipForDelta(cls, options)) continue;
    buffer.assign(cls.begin(), cls.end());
    std::sort(buffer.begin(), buffer.end(),
              [&ranks_a](int32_t s, int32_t t) {
                return ranks_a[s] < ranks_a[t];
              });
    // Track the running max-B tuple over strictly smaller A-groups; every
    // tuple B-below it forms a swap pair with it.
    int32_t run_max_tuple = -1;
    size_t i = 0;
    while (i < buffer.size() && !Full(out, options)) {
      size_t j = i;
      int32_t group_max_tuple = buffer[i];
      while (j < buffer.size() &&
             ranks_a[buffer[j]] == ranks_a[buffer[i]]) {
        if (ranks_b[buffer[j]] > ranks_b[group_max_tuple]) {
          group_max_tuple = buffer[j];
        }
        if (run_max_tuple >= 0 &&
            ranks_b[buffer[j]] < ranks_b[run_max_tuple]) {
          out.push_back(
              Violation{ViolationKind::kSwap, run_max_tuple, buffer[j]});
          if (Full(out, options)) break;
        }
        ++j;
      }
      if (run_max_tuple < 0 ||
          ranks_b[group_max_tuple] > ranks_b[run_max_tuple]) {
        run_max_tuple = group_max_tuple;
      }
      i = j;
    }
  }
  return out;
}

std::vector<Violation> ViolationScanner::Scan(const CanonicalOd& od,
                                              const ScanOptions& options) {
  if (std::holds_alternative<ConstancyOd>(od)) {
    const ConstancyOd& c = std::get<ConstancyOd>(od);
    return ScanConstancy(c.context, c.attribute, options);
  }
  const CompatibilityOd& c = std::get<CompatibilityOd>(od);
  return ScanCompatibility(c.context, c.a, c.b, options);
}

std::vector<Violation> ViolationScanner::Scan(const ListOd& od,
                                              const ScanOptions& options) {
  std::vector<Violation> out;
  std::set<std::pair<int64_t, int64_t>> seen;
  for (const CanonicalOd& piece : MapListOdToCanonical(od)) {
    for (const Violation& v : Scan(piece, options)) {
      auto key = std::minmax(v.tuple_s, v.tuple_t);
      if (seen.insert({key.first, key.second}).second) {
        out.push_back(v);
        if (Full(out, options)) return out;
      }
    }
  }
  return out;
}

std::vector<int64_t> ViolationScanner::TupleViolationCounts(
    const std::vector<Violation>& violations) const {
  std::vector<int64_t> counts(relation_->NumRows(), 0);
  for (const Violation& v : violations) {
    ++counts[v.tuple_s];
    ++counts[v.tuple_t];
  }
  return counts;
}

}  // namespace fastod
