// Brute-force O(n^2) dependency checks straight from the definitions.
//
// These are deliberately naive transliterations of Definitions 1-6 of the
// paper, used as test oracles for the partition-based validator and the
// discovery algorithms. Never use these on large relations.
#ifndef FASTOD_VALIDATE_BRUTE_FORCE_H_
#define FASTOD_VALIDATE_BRUTE_FORCE_H_

#include "data/encode.h"
#include "od/canonical_od.h"
#include "od/list_od.h"

namespace fastod {

/// r ⪯_X s under Definition 1 (weak lexicographic order).
bool TuplePrecedesEq(const EncodedRelation& rel, const OrderSpec& spec,
                     int64_t r, int64_t s);

/// r ≺_X s: r ⪯_X s and not s ⪯_X r.
bool TuplePrecedesStrict(const EncodedRelation& rel, const OrderSpec& spec,
                         int64_t r, int64_t s);

/// Definition 2, checked over all tuple pairs.
bool BruteHolds(const EncodedRelation& rel, const ListOd& od);

/// X: [] -> A over all pairs: equal context values force equal A values.
bool BruteIsConstant(const EncodedRelation& rel, AttributeSet context,
                     int attribute);

/// X: A ~ B over all pairs: no swap within any context class.
bool BruteIsOrderCompatible(const EncodedRelation& rel, AttributeSet context,
                            int a, int b);

/// Bidirectional extension: within every context class, A ascending must
/// order B descending — violated by a pair with r <_A s and r <_B s.
bool BruteIsBidiOrderCompatible(const EncodedRelation& rel,
                                AttributeSet context, int a, int b);

bool BruteHolds(const EncodedRelation& rel, const CanonicalOd& od);

}  // namespace fastod

#endif  // FASTOD_VALIDATE_BRUTE_FORCE_H_
