// Standalone OD validation against a relation instance.
//
// OdValidator answers "does this dependency hold on this data?" for both
// canonical set-based ODs and list-based ODs, using the same partition
// machinery as the discovery algorithms (contexts are cached, so repeated
// checks over the same context are cheap). It is the tool a user reaches
// for to confirm a suspected business rule, and the building block of the
// ORDER baseline and the test oracles.
#ifndef FASTOD_VALIDATE_OD_VALIDATOR_H_
#define FASTOD_VALIDATE_OD_VALIDATOR_H_

#include <unordered_map>
#include <vector>

#include "data/encode.h"
#include "od/bidirectional.h"
#include "od/canonical_od.h"
#include "od/list_od.h"
#include "partition/partition_cache.h"
#include "partition/sorted_partition.h"

namespace fastod {

class OdValidator {
 public:
  /// The relation must outlive the validator. `singletons`, when given,
  /// are prebuilt level-1 partitions (one per attribute, e.g. a
  /// LoadedDataset's) used to seed the context cache; borrowed contents
  /// are copied, so the pointer itself need not outlive the call.
  explicit OdValidator(
      const EncodedRelation* relation,
      const std::vector<StrippedPartition>* singletons = nullptr);

  /// X: [] -> A — A constant within every equivalence class of Π_X
  /// (equivalently, the FD X -> A holds).
  bool IsConstant(AttributeSet context, int attribute);

  /// X: A ~ B — no swap between A and B within any class of Π_X.
  bool IsOrderCompatible(AttributeSet context, int a, int b);

  bool Holds(const CanonicalOd& od);

  /// X ↦ Y under Definition 2, checked in O(n log n) by lexicographic sort
  /// and a single monotonicity sweep.
  bool Holds(const ListOd& od);

  /// Bidirectional extension: X: A ~ B with B taken descending — sorting
  /// any context class by A ascending sorts it by B descending.
  bool IsBidiOrderCompatible(AttributeSet context, int a, int b);

  /// Bidirectional list OD (mixed asc/desc specifications, SQL ORDER BY
  /// semantics).
  bool Holds(const BidirectionalListOd& od);

  /// X ~ Y (order compatibility of two order specifications): XY ↔ YX.
  bool AreOrderCompatible(const OrderSpec& lhs, const OrderSpec& rhs);

  /// X ↔ Y: X ↦ Y and Y ↦ X.
  bool AreOrderEquivalent(const OrderSpec& lhs, const OrderSpec& rhs);

  const EncodedRelation& relation() const { return *relation_; }

  /// Context partition Π*_X (computed on demand, cached).
  const StrippedPartition& ContextPartition(AttributeSet context);

 private:
  const EncodedRelation* relation_;
  SortedPartitions sorted_;
  SwapChecker swap_checker_;
  std::unordered_map<AttributeSet, StrippedPartition, AttributeSetHash>
      context_cache_;
};

}  // namespace fastod

#endif  // FASTOD_VALIDATE_OD_VALIDATOR_H_
