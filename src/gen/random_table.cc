#include "gen/random_table.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"

namespace fastod {

Table GenRandomTable(const RandomTableOptions& options) {
  FASTOD_CHECK(options.num_columns >= 1 && options.num_columns <= 64);
  Rng rng(options.seed);
  const int m = options.num_columns;
  const int64_t n = options.num_rows;

  // Decide each column's recipe up front: independent categorical, or a
  // monotone derivation of an earlier column (div by 2: order-preserving
  // and coarsening, creating FDs + OCDs).
  std::vector<int64_t> domain(m);
  std::vector<int> derived_from(m, -1);
  for (int c = 0; c < m; ++c) {
    domain[c] = 1 + rng.Uniform(options.max_domain);
    if (c > 0 && rng.Chance(options.derived_fraction)) {
      derived_from[c] = static_cast<int>(rng.Uniform(c));
    }
  }

  std::vector<std::vector<Value>> cols(m);
  for (int c = 0; c < m; ++c) cols[c].reserve(n);
  std::vector<int64_t> row(m);
  for (int64_t r = 0; r < n; ++r) {
    for (int c = 0; c < m; ++c) {
      if (derived_from[c] >= 0) {
        row[c] = row[derived_from[c]] / 2;
      } else {
        row[c] = rng.Uniform(domain[c]);
      }
      cols[c].push_back(Value::Int(row[c]));
    }
  }

  std::vector<AttributeDef> defs;
  defs.reserve(m);
  for (int c = 0; c < m; ++c) {
    defs.push_back(AttributeDef{std::string(1, static_cast<char>('A' + c)),
                                DataType::kInt});
  }
  return Table(Schema(std::move(defs)), std::move(cols));
}

Table GenRandomTable(int64_t rows, int columns, int64_t max_domain,
                     uint64_t seed) {
  RandomTableOptions options;
  options.num_rows = rows;
  options.num_columns = columns;
  options.max_domain = max_domain;
  options.seed = seed;
  return GenRandomTable(options);
}

Table SampleRows(const Table& table, int64_t count, uint64_t seed) {
  const int64_t n = table.NumRows();
  if (count >= n) return table;
  if (count <= 0) return table.Head(0);
  // Partial Fisher-Yates over row indices, then restore original order so
  // sampled tables keep the source's physical ordering properties.
  Rng rng(seed);
  std::vector<int64_t> indices(n);
  for (int64_t i = 0; i < n; ++i) indices[i] = i;
  for (int64_t i = 0; i < count; ++i) {
    int64_t j = i + rng.Uniform(n - i);
    std::swap(indices[i], indices[j]);
  }
  indices.resize(count);
  std::sort(indices.begin(), indices.end());
  return table.SelectRows(indices);
}

}  // namespace fastod
