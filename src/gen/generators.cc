#include "gen/generators.h"

#include <string>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"

namespace fastod {

namespace {

// Deterministic value scrambler: FD-preserving (equal inputs -> equal
// outputs) but order-destroying, used to plant FDs without OCDs.
int64_t Scramble(int64_t v, uint64_t salt) {
  uint64_t z = static_cast<uint64_t>(v) * 0x9e3779b97f4a7c15ULL + salt;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  return static_cast<int64_t>((z ^ (z >> 27)) & 0x7fffffff);
}

std::string PooledString(const char* prefix, int64_t id) {
  // Zero-padded so lexicographic order equals numeric order.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%06lld", prefix,
                static_cast<long long>(id));
  return buf;
}

}  // namespace

Table EmployeeTaxTable() {
  Schema schema({{"ID", DataType::kInt},
                 {"yr", DataType::kInt},
                 {"posit", DataType::kString},
                 {"bin", DataType::kInt},
                 {"sal", DataType::kInt},
                 {"perc", DataType::kInt},
                 {"tax", DataType::kInt},
                 {"grp", DataType::kString},
                 {"subg", DataType::kString}});
  TableBuilder b(schema);
  auto row = [&](int64_t id, int64_t yr, const char* posit, int64_t bin,
                 int64_t sal, int64_t perc, int64_t tax, const char* grp,
                 const char* subg) {
    b.AddRowUnchecked({Value::Int(id), Value::Int(yr), Value::Str(posit),
                       Value::Int(bin), Value::Int(sal), Value::Int(perc),
                       Value::Int(tax), Value::Str(grp), Value::Str(subg)});
  };
  // Table 1 of the paper (salaries in dollars, percentages in points).
  row(10, 16, "secr", 1, 5000, 20, 1000, "A", "III");
  row(11, 16, "mngr", 2, 8000, 25, 2000, "C", "II");
  row(12, 16, "direct", 3, 10000, 30, 3000, "D", "I");
  row(10, 15, "secr", 1, 4500, 20, 900, "A", "III");
  row(11, 15, "mngr", 2, 6000, 25, 1500, "C", "I");
  row(12, 15, "direct", 3, 8000, 25, 2000, "C", "II");
  return b.Build();
}

Table GenFlightLike(int64_t rows, int attributes, uint64_t seed) {
  FASTOD_CHECK(attributes >= 1 && attributes <= 64);
  Rng rng(seed);
  std::vector<AttributeDef> defs;
  std::vector<std::vector<Value>> cols(attributes);
  for (int c = 0; c < attributes; ++c) cols[c].reserve(rows);

  for (int64_t r = 0; r < rows; ++r) {
    const int64_t date_sk = r;  // data loaded in arrival order
    const int64_t month = rows <= 1 ? 1 : 1 + (r * 12) / rows;
    const int64_t quarter = (month - 1) / 3 + 1;
    const int64_t day = r % 30 + 1;
    const int64_t carrier = rng.Uniform(8);
    const int64_t origin = rng.Uniform(50);
    const int64_t dest = rng.Uniform(50);
    const int64_t distance = 200 + Scramble(origin * 50 + dest, 7) % 3000;
    const int64_t duration = distance / 8 + 30;  // monotone in distance
    const int64_t delay = rng.UniformRange(-10, 120);
    for (int c = 0; c < attributes; ++c) {
      Value v;
      switch (c % 14) {
        case 0:  v = Value::Int(2012); break;                       // constant year
        case 1:  v = Value::Int(r); break;                          // key
        case 2:  v = Value::Int(date_sk); break;                    // surrogate
        case 3:  v = Value::Int(month); break;
        case 4:  v = Value::Int(quarter); break;
        case 5:  v = Value::Int(day); break;
        case 6:  v = Value::Str(PooledString("CA", carrier)); break;
        case 7:  v = Value::Str(PooledString("AP", origin)); break;
        case 8:  v = Value::Str(PooledString("AP", dest)); break;
        case 9:  v = Value::Int(distance); break;
        case 10: v = Value::Int(duration); break;
        case 11: v = Value::Int(delay); break;
        case 12: v = Value::Str(PooledString("TL", rng.Uniform(
                     std::max<int64_t>(1, rows / 3)))); break;      // tail num
        default: v = Value::Int(Scramble(rng.Uniform(64), 100 + c / 14) %
                                (4 + c / 14));                      // filler
      }
      cols[c].push_back(std::move(v));
    }
  }

  static const char* kNames[14] = {"year",    "flight_id", "date_sk",
                                   "month",   "quarter",   "day",
                                   "carrier", "origin",    "dest",
                                   "distance", "duration", "delay",
                                   "tailnum", "filler"};
  for (int c = 0; c < attributes; ++c) {
    std::string name = kNames[c % 14];
    if (c >= 14) {
      name += '_';
      name += std::to_string(c / 14);
    }
    DataType type = cols[c].empty() ? DataType::kInt : cols[c][0].type();
    defs.push_back(AttributeDef{name, type});
  }
  return Table(Schema(std::move(defs)), std::move(cols));
}

Table GenNcvoterLike(int64_t rows, int attributes, uint64_t seed) {
  FASTOD_CHECK(attributes >= 1 && attributes <= 64);
  Rng rng(seed);
  std::vector<AttributeDef> defs;
  std::vector<std::vector<Value>> cols(attributes);
  for (int c = 0; c < attributes; ++c) cols[c].reserve(rows);

  const int64_t name_pool = std::max<int64_t>(2, rows / 2);
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t city = rng.Uniform(80);
    const int64_t zip = 27000 + city * 9 + Scramble(city, 3) % 9;  // FD city->zip
    const int64_t precinct = city * 10 + rng.Uniform(10);
    const int64_t age = rng.UniformRange(18, 100);
    const int64_t birth_year = 2016 - age;  // DESC correlation: swaps abound
    for (int c = 0; c < attributes; ++c) {
      Value v;
      switch (c % 12) {
        case 0:  v = Value::Int(r); break;                             // voter id (key)
        case 1:  v = Value::Str(PooledString("LN", rng.Uniform(name_pool))); break;
        case 2:  v = Value::Str(PooledString("FN", rng.Uniform(200))); break;
        case 3:  v = Value::Str(PooledString("CI", city)); break;
        case 4:  v = Value::Int(zip); break;
        case 5:  v = Value::Int(precinct); break;
        case 6:  v = Value::Int(age); break;
        case 7:  v = Value::Int(birth_year); break;
        case 8:  v = Value::Str(PooledString("ST", rng.Uniform(3))); break;  // status
        case 9:  v = Value::Int(rng.Uniform(3650)); break;             // reg date
        case 10: v = Value::Str(PooledString("PH", rng.Uniform(
                     std::max<int64_t>(2, rows - rows / 100)))); break;  // phone
        default: v = Value::Int(rng.Uniform(5 + c / 12)); break;       // filler
      }
      cols[c].push_back(std::move(v));
    }
  }

  static const char* kNames[12] = {"voter_id", "last_name", "first_name",
                                   "city",     "zip",       "precinct",
                                   "age",      "birth_year", "status",
                                   "reg_date", "phone",     "filler"};
  for (int c = 0; c < attributes; ++c) {
    std::string name = kNames[c % 12];
    if (c >= 12) {
      name += '_';
      name += std::to_string(c / 12);
    }
    DataType type = cols[c].empty() ? DataType::kInt : cols[c][0].type();
    defs.push_back(AttributeDef{name, type});
  }
  return Table(Schema(std::move(defs)), std::move(cols));
}

Table GenHepatitisLike(int64_t rows, int attributes, uint64_t seed) {
  FASTOD_CHECK(attributes >= 1 && attributes <= 64);
  Rng rng(seed);
  std::vector<AttributeDef> defs;
  std::vector<std::vector<Value>> cols(attributes);
  // Per-column domain sizes: mostly binary/ternary clinical flags, a few
  // wider (age bins, lab measurements), one constant.
  std::vector<int64_t> domains(attributes);
  for (int c = 0; c < attributes; ++c) {
    if (c == 2) {
      domains[c] = 1;  // a constant column (e.g. "dataset version")
    } else if (c % 5 == 0) {
      domains[c] = 7;  // age-bin-like
    } else {
      domains[c] = 2 + rng.Uniform(3);  // 2..4 categories
    }
  }
  for (int64_t r = 0; r < rows; ++r) {
    for (int c = 0; c < attributes; ++c) {
      cols[c].push_back(Value::Int(rng.Uniform(domains[c])));
    }
  }
  for (int c = 0; c < attributes; ++c) {
    defs.push_back(
        AttributeDef{"attr" + std::to_string(c), DataType::kInt});
  }
  return Table(Schema(std::move(defs)), std::move(cols));
}

Table GenDbtesmaLike(int64_t rows, int attributes, uint64_t seed) {
  FASTOD_CHECK(attributes >= 1 && attributes <= 64);
  Rng rng(seed);
  std::vector<AttributeDef> defs;
  std::vector<std::vector<Value>> cols(attributes);
  for (int c = 0; c < attributes; ++c) cols[c].reserve(rows);

  // Columns come in planted FD chains of three: base (categorical),
  // derived1 = scramble(base), derived2 = scramble(base, derived1). The
  // scrambling keeps the FDs (equal bases -> equal derivations) while
  // destroying order compatibility, matching dbtesma's FD-heavy profile.
  for (int64_t r = 0; r < rows; ++r) {
    std::vector<int64_t> base(attributes / 3 + 1, 0);
    for (size_t g = 0; g < base.size(); ++g) {
      base[g] = rng.Uniform(40 + static_cast<int64_t>(g) * 7);
    }
    for (int c = 0; c < attributes; ++c) {
      const int group = c / 3;
      const int role = c % 3;
      int64_t v;
      if (role == 0) {
        v = base[group];
      } else if (role == 1) {
        v = Scramble(base[group], 1000 + group) % 97;
      } else {
        v = Scramble(base[group] * 131 + Scramble(base[group], 1000 + group),
                     2000 + group) %
            53;
      }
      cols[c].push_back(Value::Int(v));
    }
  }
  for (int c = 0; c < attributes; ++c) {
    const char* role = (c % 3 == 0) ? "base" : (c % 3 == 1 ? "dv1" : "dv2");
    defs.push_back(AttributeDef{
        std::string(role) + "_" + std::to_string(c / 3), DataType::kInt});
  }
  return Table(Schema(std::move(defs)), std::move(cols));
}

}  // namespace fastod
