#include "gen/date_dim.h"

#include <cstdio>

namespace fastod {

namespace {

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) {
  static const int kDays[12] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30,
                                31};
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

}  // namespace

Table GenDateDim(int64_t num_days, int start_year, int64_t first_date_sk) {
  Schema schema({{"d_date_sk", DataType::kInt},
                 {"d_date", DataType::kString},
                 {"d_year", DataType::kInt},
                 {"d_quarter", DataType::kInt},
                 {"d_month", DataType::kInt},
                 {"d_week", DataType::kInt},
                 {"d_dom", DataType::kInt},
                 {"d_dow", DataType::kInt}});
  TableBuilder b(schema);

  int year = start_year;
  int month = 1;
  int dom = 1;
  int doy = 1;  // day of year, 1-based
  for (int64_t i = 0; i < num_days; ++i) {
    char date_str[32];  // sized for the full int range, not just 4-digit years
    std::snprintf(date_str, sizeof(date_str), "%04d-%02d-%02d", year, month,
                  dom);
    const int quarter = (month - 1) / 3 + 1;
    const int week = (doy - 1) / 7 + 1;
    const int dow = static_cast<int>((first_date_sk + i) % 7);
    b.AddRowUnchecked({Value::Int(first_date_sk + i), Value::Str(date_str),
                       Value::Int(year), Value::Int(quarter),
                       Value::Int(month), Value::Int(week), Value::Int(dom),
                       Value::Int(dow)});
    // Advance one day.
    ++dom;
    ++doy;
    if (dom > DaysInMonth(year, month)) {
      dom = 1;
      ++month;
      if (month > 12) {
        month = 1;
        doy = 1;
        ++year;
      }
    }
  }
  return b.Build();
}

}  // namespace fastod
