// A TPC-DS-style date dimension (Query 1 / Section 1.1 of the paper).
//
// The paper motivates OD-based query optimization with the TPC-DS date_dim
// table: d_date_sk is a surrogate key assigned in increasing date order, so
// d_date_sk orders d_date and d_year (enabling join elimination for
// between-predicates on year), and d_month orders d_quarter (enabling
// order-by/group-by simplification). This generator produces exactly that
// structure; examples/query_optimization.cc discovers and interprets the
// ODs.
#ifndef FASTOD_GEN_DATE_DIM_H_
#define FASTOD_GEN_DATE_DIM_H_

#include <cstdint>

#include "data/table.h"

namespace fastod {

/// `num_days` consecutive days starting January 1 of `start_year`.
/// Columns: d_date_sk (int, surrogate), d_date (ISO string), d_year,
/// d_quarter (1-4), d_month (1-12, the month-of-year), d_week (week of
/// year), d_dom (day of month), d_dow (day of week 0-6).
/// Calendar arithmetic uses real Gregorian month lengths including leap
/// years.
Table GenDateDim(int64_t num_days, int start_year = 1998,
                 int64_t first_date_sk = 2450815);

}  // namespace fastod

#endif  // FASTOD_GEN_DATE_DIM_H_
