// Synthetic dataset generators standing in for the paper's evaluation data.
//
// The paper evaluates on flight (HPI, 500K×40), ncvoter (UCI, 1M×20),
// hepatitis (155×20) and dbtesma (synthetic, 250K×30). Those files are not
// redistributable here, so each generator below reproduces the *structural*
// properties that drive the reported behaviour (see DESIGN.md's
// substitution table): constants, keys, FD chains, order-compatible
// hierarchies, and swap-heavy column pairs, in proportions chosen per
// dataset. All generators are deterministic in (rows, attributes, seed).
//
// Column recipes cycle when more attributes are requested than a recipe
// defines, so scalability-in-|R| sweeps (Exp-2) can request any width up
// to 64.
#ifndef FASTOD_GEN_GENERATORS_H_
#define FASTOD_GEN_GENERATORS_H_

#include <cstdint>

#include "data/table.h"

namespace fastod {

/// Table 1 of the paper, verbatim: employee salary/tax records.
/// Columns: ID, yr, posit, bin, sal, perc, tax, grp, subg.
Table EmployeeTaxTable();

/// flight-like: a constant column (all flights in year 2012 — the OD
/// {}: [] -> year that ORDER cannot represent), a surrogate-key/date
/// hierarchy (date_sk orders month orders quarter), a route -> distance ->
/// duration FD/OCD chain, a key column, and categorical filler.
Table GenFlightLike(int64_t rows, int attributes, uint64_t seed = 42);

/// ncvoter-like: personal-data mix — key ids, name pools, city -> zip FDs,
/// an age/birth-year *descending* correlation (swaps under ascending
/// semantics, so few top-level OCDs and an early-death ORDER lattice).
Table GenNcvoterLike(int64_t rows, int attributes, uint64_t seed = 42);

/// hepatitis-like: tiny relation, many small-domain categorical columns —
/// hundreds of accidental FDs/OCDs at deeper contexts.
Table GenHepatitisLike(int64_t rows, int attributes, uint64_t seed = 42);

/// dbtesma-like: FD-rich benchmark table — planted FD chains through
/// hash-scrambled derivations (FDs hold, order compatibility does not),
/// so the FD side dominates the OCD side as in the paper's counts.
Table GenDbtesmaLike(int64_t rows, int attributes, uint64_t seed = 42);

}  // namespace fastod

#endif  // FASTOD_GEN_GENERATORS_H_
