// Small random relations for property-based testing.
//
// The correctness properties of this library (FASTOD vs. the brute-force
// oracle, partition identities, mapping equivalences, axiom soundness) are
// checked over hundreds of random relations generated here. Domain sizes
// are kept small so that dependencies of every kind — constants, keys,
// FDs, order-compatible pairs, swaps — occur by chance.
#ifndef FASTOD_GEN_RANDOM_TABLE_H_
#define FASTOD_GEN_RANDOM_TABLE_H_

#include <cstdint>

#include "data/table.h"

namespace fastod {

struct RandomTableOptions {
  int64_t num_rows = 20;
  int num_columns = 4;
  /// Per-column domain size is drawn uniformly from [1, max_domain].
  int64_t max_domain = 4;
  /// Fraction of columns replaced by monotone derivations of another
  /// column (plants order-compatible structure).
  double derived_fraction = 0.25;
  uint64_t seed = 1;
};

/// An integer-valued random table per the options.
Table GenRandomTable(const RandomTableOptions& options);

/// Convenience overload used all over the tests.
Table GenRandomTable(int64_t rows, int columns, int64_t max_domain,
                     uint64_t seed);

/// A uniform random sample of `count` distinct rows (row order preserved),
/// the sampling protocol of the paper's Exp-1 ("random samples of 20, 40,
/// 60, 80 and 100 percent"). count >= NumRows() returns the whole table.
Table SampleRows(const Table& table, int64_t count, uint64_t seed);

}  // namespace fastod

#endif  // FASTOD_GEN_RANDOM_TABLE_H_
