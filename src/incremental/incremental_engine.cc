#include "incremental/incremental_engine.h"

#include <limits>
#include <utility>

#include "common/json.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "report/report.h"

namespace fastod {

namespace {

Result<AttributeSet> ParseContext(const JsonValue& od,
                                  const Schema& schema) {
  const JsonValue* context = od.Find("context");
  if (context == nullptr || !context->is_array()) {
    return Status::InvalidArgument(
        "prior OD " + od.Dump() + " lacks a \"context\" array");
  }
  AttributeSet set;
  for (const JsonValue& name : context->array_items()) {
    if (!name.is_string()) {
      return Status::InvalidArgument(
          "prior OD context entries must be attribute names, got " +
          name.Dump());
    }
    Result<int> index = schema.IndexOf(name.string_value());
    if (!index.ok()) return index.status();
    set = set.With(*index);
  }
  return set;
}

Result<int> ParseAttr(const JsonValue& od, const char* key,
                      const Schema& schema) {
  const JsonValue* name = od.Find(key);
  if (name == nullptr || !name->is_string()) {
    return Status::InvalidArgument("prior OD " + od.Dump() +
                                   " lacks a \"" + key + "\" name");
  }
  return schema.IndexOf(name->string_value());
}

}  // namespace

Result<PriorOds> ParsePriorReport(const std::string& json,
                                  const Schema& schema) {
  Result<JsonValue> parsed = ParseJson(json);
  if (!parsed.ok()) {
    return Status::InvalidArgument("malformed prior report: " +
                                   parsed.status().message());
  }
  if (!parsed->is_object()) {
    return Status::InvalidArgument("prior report must be a JSON object");
  }
  const JsonValue* bidi = parsed->Find("bidirectional_ods");
  if (bidi != nullptr && bidi->is_array() && !bidi->array_items().empty()) {
    return Status::InvalidArgument(
        "incremental re-validation covers constancy and compatibility ODs "
        "only; the prior report contains bidirectional ODs");
  }
  const JsonValue* constancy = parsed->Find("constancy_ods");
  const JsonValue* compatibility = parsed->Find("compatibility_ods");
  if (constancy == nullptr && compatibility == nullptr) {
    return Status::InvalidArgument(
        "prior report has neither \"constancy_ods\" nor "
        "\"compatibility_ods\"; pass a fastod-shaped result report");
  }
  PriorOds prior;
  if (constancy != nullptr) {
    if (!constancy->is_array()) {
      return Status::InvalidArgument("\"constancy_ods\" must be an array");
    }
    for (const JsonValue& od : constancy->array_items()) {
      Result<AttributeSet> context = ParseContext(od, schema);
      if (!context.ok()) return context.status();
      Result<int> attribute = ParseAttr(od, "attribute", schema);
      if (!attribute.ok()) return attribute.status();
      prior.constancy.push_back(ConstancyOd{*context, *attribute});
    }
  }
  if (compatibility != nullptr) {
    if (!compatibility->is_array()) {
      return Status::InvalidArgument(
          "\"compatibility_ods\" must be an array");
    }
    for (const JsonValue& od : compatibility->array_items()) {
      Result<AttributeSet> context = ParseContext(od, schema);
      if (!context.ok()) return context.status();
      Result<int> a = ParseAttr(od, "a", schema);
      if (!a.ok()) return a.status();
      Result<int> b = ParseAttr(od, "b", schema);
      if (!b.ok()) return b.status();
      prior.compatibility.push_back(CompatibilityOd(*context, *a, *b));
    }
  }
  return prior;
}

IncrementalAlgorithm::IncrementalAlgorithm()
    : Algorithm("incremental",
                "re-validates a prior OD set against appended rows and "
                "re-searches the lattice only above broken nodes") {
  options().AddString("prior", &prior_json_,
                      "the prior version's result report JSON (required)");
  options().AddInt64("base-rows", &base_rows_option_,
                     "rows the prior was discovered on (-1 = from the "
                     "bound dataset version)",
                     -1, std::numeric_limits<int64_t>::max());
}

Status IncrementalAlgorithm::ExecuteInternal() {
  if (prior_json_.empty()) {
    return Status::InvalidArgument(
        "the incremental algorithm requires --prior=<result report JSON> "
        "from the previous discovery run");
  }
  Result<PriorOds> prior = ParsePriorReport(prior_json_, relation().schema());
  if (!prior.ok()) return prior.status();

  int64_t base_rows = base_rows_option_;
  if (base_rows < 0) {
    if (dataset() == nullptr) {
      return Status::InvalidArgument(
          "--base-rows is required unless the session binds a versioned "
          "dataset (its base_rows supplies the delta boundary)");
    }
    base_rows = dataset()->base_rows();
  }
  if (base_rows > relation().NumRows()) {
    return Status::InvalidArgument(
        "--base-rows=" + std::to_string(base_rows) + " exceeds the " +
        std::to_string(relation().NumRows()) + " loaded rows");
  }
  resolved_base_rows_ = base_rows;

  WallTimer timer;
  IncrementalOptions run;
  run.base_rows = base_rows;
  run.singletons = prebuilt_singletons();
  run.sink = sink();
  run.control = control();
  result_ = IncrementalDiscovery(&relation(), run).Run(*prior);
  seconds_ = timer.ElapsedSeconds();

  if (obs::Enabled()) {
    obs::Registry::Global()
        .GetCounter("fastod_incremental_revalidated_total",
                    "Prior ODs re-validated against dataset deltas")
        ->Inc(result_.revalidated);
    obs::Registry::Global()
        .GetCounter("fastod_incremental_escalations_total",
                    "Broken ODs that seeded a targeted lattice re-search")
        ->Inc(result_.escalations);
  }

  obs::EngineStats& stats = mutable_stats();
  stats.nodes_visited = result_.nodes_searched;
  stats.candidates_checked = result_.revalidated;
  stats.ods_emitted = result_.new_constancy + result_.new_compatibility +
                      static_cast<int64_t>(result_.revoked_constancy.size() +
                                           result_.revoked_compatibility
                                               .size());
  return Status::Ok();
}

std::string IncrementalAlgorithm::ResultText() const {
  RelationInfo info{relation().NumRows(), &relation().schema()};
  return IncrementalResultToText(result_, info, seconds_);
}

std::string IncrementalAlgorithm::ResultJson() const {
  RelationInfo info{relation().NumRows(), &relation().schema()};
  return IncrementalResultToJson(result_, info, seconds_,
                                 resolved_base_rows_);
}

}  // namespace fastod
