// Incremental OD discovery over a grown relation (the ROADMAP's
// "incremental discovery over versioned datasets" item).
//
// Setting: a complete minimal OD set was discovered on some prefix of the
// relation (the prior dataset version), then rows were appended. Under
// the set-based axiomatization validity is *antitone under row append* —
// extra tuples can only add split/swap pairs, so an OD valid on the grown
// relation was valid on the prefix, and the frontier of minimal ODs can
// only move *up* the lattice. That structure makes re-discovery local:
//
//   Phase 1 (re-validate). Each prior OD is checked against the grown
//   relation with validate/violation_scanner in delta-limited mode
//   (ScanOptions::delta_start = prefix rows): since the prefix satisfied
//   the OD, any violating pair involves an appended tuple, so context
//   classes that end before the delta are skipped wholesale. Survivors
//   stay minimal automatically — their proper subset contexts were
//   invalid before and invalidity persists under appends. Broken ODs are
//   *revoked* (OdSink::OnRevoked).
//
//   Phase 2 (targeted escalation). New minimal ODs can only appear at
//   contexts strictly containing a broken OD's context (constancy), or —
//   for compatibility — also at/above a broken *constancy* context of
//   either side attribute: X: [] -> A valid suppresses reporting
//   X: A ~ B (the Propagate rule), so when the constancy breaks, the
//   compatibility pair it was suppressing surfaces. A level-ordered BFS
//   rooted at exactly those nodes validates candidates with
//   validate/od_validator (exact, full-relation checks), stops expanding
//   at the first valid node (validity is up-closed in the context), and
//   accepts a valid candidate as minimal iff every immediate subset
//   context is invalid and — for compatibility — neither side is constant
//   in the candidate context. No full level-wise sweep ever runs.
//
// The correctness contract is exact equivalence: survivors + newly found
// ODs == a fresh full FASTOD run on the grown relation, bit for bit
// (pinned in tests/incremental_test.cc). It requires the prior set to be
// the *complete minimal* result for the prefix and prefix validity of
// every prior OD; both hold when the prior came from a fastod run on the
// previous dataset version.
#ifndef FASTOD_INCREMENTAL_INCREMENTAL_H_
#define FASTOD_INCREMENTAL_INCREMENTAL_H_

#include <cstdint>
#include <vector>

#include "common/cancellation.h"
#include "data/encode.h"
#include "od/canonical_od.h"
#include "partition/stripped_partition.h"

namespace fastod {

class OdSink;

/// The prior version's complete minimal OD set (a fastod result). The
/// incremental engine covers the two canonical shapes; bidirectional and
/// list-shaped priors are not supported.
struct PriorOds {
  std::vector<ConstancyOd> constancy;
  std::vector<CompatibilityOd> compatibility;
};

struct IncrementalOptions {
  /// Rows of the relation prefix the prior set was discovered on — the
  /// first appended row index. Phase 1 scans only context classes
  /// touching rows at or past this index. Must be the row count of the
  /// dataset version the prior result came from.
  int64_t base_rows = 0;

  /// Streaming target: revocations (phase 1, prior order) then new
  /// discoveries (phase 2, level order). Surviving ODs are *not*
  /// re-emitted — a stream consumer already holds them from the prior
  /// run. Must outlive Run().
  OdSink* sink = nullptr;

  /// Cooperative cancellation/deadline, polled per re-validation and per
  /// escalation node. Must outlive Run().
  ExecutionControl* control = nullptr;

  /// Prebuilt level-1 partitions of the *grown* relation, one per
  /// attribute (a bound LoadedDataset's; see Fastod::Discover). Seeds the
  /// escalation validator and the delta-partition domains. Borrowed; must
  /// outlive Run().
  const std::vector<StrippedPartition>* singletons = nullptr;
};

struct IncrementalResult {
  /// The grown relation's complete minimal OD set: survivors (prior
  /// order) followed by phase-2 discoveries (level order).
  std::vector<ConstancyOd> constancy_ods;
  std::vector<CompatibilityOd> compatibility_ods;

  /// Prior ODs the delta broke.
  std::vector<ConstancyOd> revoked_constancy;
  std::vector<CompatibilityOd> revoked_compatibility;

  /// Phase-2 discoveries only (suffixes of the final vectors above).
  int64_t new_constancy = 0;
  int64_t new_compatibility = 0;

  int64_t revalidated = 0;     // prior ODs checked in phase 1
  int64_t escalations = 0;     // broken ODs that seeded phase 2
  int64_t nodes_searched = 0;  // lattice nodes validated in phase 2
  bool cancelled = false;      // stopped early; result is partial
};

/// One incremental run. The relation is the *grown* version (prefix +
/// appended rows); it must outlive the object.
class IncrementalDiscovery {
 public:
  IncrementalDiscovery(const EncodedRelation* relation,
                       IncrementalOptions options);

  IncrementalResult Run(const PriorOds& prior);

 private:
  const EncodedRelation* relation_;
  IncrementalOptions options_;
};

}  // namespace fastod

#endif  // FASTOD_INCREMENTAL_INCREMENTAL_H_
