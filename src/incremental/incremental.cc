#include "incremental/incremental.h"

#include <algorithm>
#include <deque>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "api/od_sink.h"
#include "validate/od_validator.h"
#include "validate/violation_scanner.h"

namespace fastod {

IncrementalDiscovery::IncrementalDiscovery(const EncodedRelation* relation,
                                           IncrementalOptions options)
    : relation_(relation), options_(std::move(options)) {
  FASTOD_CHECK(relation_ != nullptr);
}

namespace {

/// Memoized exact validity over the grown relation. OdValidator already
/// caches context partitions; this adds verdict caching on top, so the
/// minimality probes of neighboring candidates (which share immediate
/// subset contexts) re-ask for free. Phase 1 pre-seeds it: a delta-limited
/// scan verdict *is* an exact validity verdict, given prefix validity.
class ValidityOracle {
 public:
  explicit ValidityOracle(const EncodedRelation* relation,
                          const std::vector<StrippedPartition>* singletons)
      : validator_(relation, singletons) {}

  void Seed(const ConstancyOd& od, bool valid) {
    constancy_.emplace(od, valid);
  }
  void Seed(const CompatibilityOd& od, bool valid) {
    compatibility_.emplace(od, valid);
  }

  bool Constant(AttributeSet context, int attribute) {
    ConstancyOd key{context, attribute};
    auto it = constancy_.find(key);
    if (it != constancy_.end()) return it->second;
    bool valid = validator_.IsConstant(context, attribute);
    constancy_.emplace(key, valid);
    return valid;
  }

  bool Compatible(AttributeSet context, int a, int b) {
    CompatibilityOd key(context, a, b);
    auto it = compatibility_.find(key);
    if (it != compatibility_.end()) return it->second;
    bool valid = validator_.IsOrderCompatible(context, a, b);
    compatibility_.emplace(key, valid);
    return valid;
  }

 private:
  OdValidator validator_;
  std::unordered_map<ConstancyOd, bool, ConstancyOdHash> constancy_;
  std::unordered_map<CompatibilityOd, bool, CompatibilityOdHash>
      compatibility_;
};

/// One phase-2 lattice node: a candidate OD to test on the grown relation.
struct Candidate {
  enum class Kind { kConstancy, kCompatibility };
  Kind kind = Kind::kConstancy;
  AttributeSet context;
  int a = -1;  // constancy attribute, or the smaller pair side
  int b = -1;  // the larger pair side (compatibility only)
};

/// Delta-restricted context partitions for phase 1: only the classes of
/// Π*_X containing an appended tuple matter to a delta-limited scan, and
/// those classes can be built without touching the whole relation.
///
/// Every non-singleton class of Π*_X that contains a delta row is nested
/// inside a delta-touching, non-singleton class of Π*_{a} for EVERY
/// a ∈ X (the class shares its a-rank, has >= 2 members, and contains
/// the delta row). So the rows of the delta-touching classes of any one
/// attribute of X — we pick the attribute with the fewest such rows —
/// are a complete domain: grouping just those rows by their X-ranks
/// reproduces every delta-touching class of Π*_X exactly. Classes the
/// restriction truncates are precisely the ones with no delta row, and
/// the scanner's delta_start skip ignores them; pairs inside any emitted
/// class are genuine Π*_X pairs, so verdicts are exact.
class DeltaPartitions {
 public:
  DeltaPartitions(const EncodedRelation* relation, int64_t delta_start,
                  const std::vector<StrippedPartition>* singletons)
      : relation_(relation),
        delta_start_(delta_start),
        singletons_(singletons),
        domains_(relation->NumAttributes()) {}

  const StrippedPartition& Restricted(AttributeSet context) {
    auto it = cache_.find(context.bits());
    if (it != cache_.end()) return it->second;
    return cache_.emplace(context.bits(), Build(context)).first->second;
  }

 private:
  /// Ascending row ids of Π*_{a}'s delta-touching classes (lazy).
  const std::vector<int32_t>& Domain(int a) {
    if (!domains_[a].computed) {
      StrippedPartition local;
      const StrippedPartition& singleton =
          singletons_ != nullptr
              ? (*singletons_)[a]
              : (local = StrippedPartition::ForAttribute(relation_->codes(a)));
      std::vector<int32_t>& rows = domains_[a].rows;
      for (int32_t c = 0; c < singleton.NumClasses(); ++c) {
        auto cls = singleton.Class(c);
        // Members ascend, so the last decides delta contact.
        if (static_cast<int64_t>(cls[cls.size() - 1]) < delta_start_) {
          continue;
        }
        rows.insert(rows.end(), cls.begin(), cls.end());
      }
      std::sort(rows.begin(), rows.end());
      domains_[a].computed = true;
    }
    return domains_[a].rows;
  }

  StrippedPartition Build(AttributeSet context) {
    if (context.IsEmpty()) {
      return StrippedPartition::Universe(relation_->NumRows());
    }
    int best = context.First();
    for (int a = context.Next(best); a >= 0; a = context.Next(a)) {
      if (Domain(a).size() < Domain(best).size()) best = a;
    }
    std::vector<int32_t> rows = Domain(best);
    std::vector<const CodeColumn*> ranks;
    for (int a = context.First(); a >= 0; a = context.Next(a)) {
      ranks.push_back(&relation_->codes(a));
    }
    // Sort by the X-rank tuple (row id as tiebreak keeps class members
    // ascending, which the scanner's delta skip relies on), then emit
    // adjacent equal-key runs as classes.
    std::sort(rows.begin(), rows.end(), [&](int32_t s, int32_t t) {
      for (const CodeColumn* column : ranks) {
        if ((*column)[s] != (*column)[t]) return (*column)[s] < (*column)[t];
      }
      return s < t;
    });
    auto same_class = [&](int32_t s, int32_t t) {
      for (const CodeColumn* column : ranks) {
        if ((*column)[s] != (*column)[t]) return false;
      }
      return true;
    };
    PartitionBuilder builder(relation_->NumRows());
    size_t i = 0;
    while (i < rows.size()) {
      builder.BeginClass();
      builder.AddTuple(rows[i]);
      size_t j = i + 1;
      while (j < rows.size() && same_class(rows[i], rows[j])) {
        builder.AddTuple(rows[j]);
        ++j;
      }
      builder.EndClass();
      i = j;
    }
    return builder.Build();
  }

  struct AttrDomain {
    bool computed = false;
    std::vector<int32_t> rows;
  };

  const EncodedRelation* relation_;
  int64_t delta_start_;
  const std::vector<StrippedPartition>* singletons_;
  std::vector<AttrDomain> domains_;
  std::unordered_map<uint64_t, StrippedPartition> cache_;
};

}  // namespace

IncrementalResult IncrementalDiscovery::Run(const PriorOds& prior) {
  IncrementalResult result;
  const int attrs = relation_->NumAttributes();

  ViolationScanner scanner(relation_);
  ScanOptions scan;
  scan.max_violations = 1;  // existence decides; pairs are not reported
  scan.delta_start = options_.base_rows;

  auto stop_requested = [&] {
    return options_.control != nullptr && options_.control->StopRequested();
  };

  // ---- Phase 1: re-validate every prior OD against the delta ---------
  // Prior ODs cluster on few distinct contexts, and a delta-limited scan
  // only ever looks at classes containing appended tuples — so each
  // context's partition is built once, restricted to the rows that can
  // share such a class (see DeltaPartitions).
  ValidityOracle oracle(relation_, options_.singletons);
  DeltaPartitions delta_partitions(relation_, options_.base_rows,
                                   options_.singletons);
  auto context_partition =
      [&](AttributeSet context) -> const StrippedPartition& {
    return delta_partitions.Restricted(context);
  };
  std::unordered_set<ConstancyOd, ConstancyOdHash> surviving_constancy;
  std::unordered_set<CompatibilityOd, CompatibilityOdHash> surviving_compat;
  std::vector<ConstancyOd> broken_constancy;
  std::vector<CompatibilityOd> broken_compat;

  for (const ConstancyOd& od : prior.constancy) {
    if (stop_requested()) {
      result.cancelled = true;
      return result;
    }
    ++result.revalidated;
    bool valid =
        scanner.ScanConstancy(context_partition(od.context), od.attribute,
                              scan)
            .empty();
    oracle.Seed(od, valid);
    if (valid) {
      result.constancy_ods.push_back(od);
      surviving_constancy.insert(od);
    } else {
      broken_constancy.push_back(od);
      result.revoked_constancy.push_back(od);
      if (options_.sink != nullptr) options_.sink->OnRevoked(RevokedOd{od});
    }
  }
  for (const CompatibilityOd& od : prior.compatibility) {
    if (stop_requested()) {
      result.cancelled = true;
      return result;
    }
    ++result.revalidated;
    bool valid = scanner
                     .ScanCompatibility(context_partition(od.context),
                                        od.a, od.b, scan)
                     .empty();
    oracle.Seed(od, valid);
    if (valid) {
      result.compatibility_ods.push_back(od);
      surviving_compat.insert(od);
    } else {
      broken_compat.push_back(od);
      result.revoked_compatibility.push_back(od);
      if (options_.sink != nullptr) options_.sink->OnRevoked(RevokedOd{od});
    }
  }
  result.escalations =
      static_cast<int64_t>(broken_constancy.size() + broken_compat.size());

  // ---- Phase 2: targeted re-search rooted at the broken nodes --------
  // Every new minimal OD lies at a context (weakly) above a broken one:
  // strictly above for the same shape, and for compatibility also at or
  // above a broken constancy context of either side — a breaking
  // constancy un-suppresses the pairs Propagate was hiding. The BFS
  // expands only through invalid nodes (every proper subset context of a
  // minimal OD is invalid, so the chain up from the seed is walkable) and
  // stops at valid ones (validity is up-closed: anything above a valid
  // node has a valid subset and cannot be minimal).
  std::map<int, std::deque<Candidate>> frontier;  // keyed by |context|
  std::unordered_set<ConstancyOd, ConstancyOdHash> seen_constancy;
  std::unordered_set<CompatibilityOd, CompatibilityOdHash> seen_compat;

  auto enqueue_constancy = [&](AttributeSet context, int attribute) {
    ConstancyOd od{context, attribute};
    if (od.IsTrivial()) return;
    if (!seen_constancy.insert(od).second) return;
    Candidate cand;
    cand.kind = Candidate::Kind::kConstancy;
    cand.context = context;
    cand.a = attribute;
    frontier[context.Count()].push_back(cand);
  };
  auto enqueue_compat = [&](AttributeSet context, int a, int b) {
    CompatibilityOd od(context, a, b);
    if (od.IsTrivial()) return;
    if (!seen_compat.insert(od).second) return;
    Candidate cand;
    cand.kind = Candidate::Kind::kCompatibility;
    cand.context = context;
    cand.a = od.a;
    cand.b = od.b;
    frontier[context.Count()].push_back(cand);
  };

  for (const ConstancyOd& od : broken_constancy) {
    for (int c = 0; c < attrs; ++c) {
      if (od.context.Contains(c) || c == od.attribute) continue;
      enqueue_constancy(od.context.With(c), od.attribute);
    }
    // The pairs this constancy was suppressing (Propagate): seed at the
    // broken context itself — their minimal context may equal it.
    for (int other = 0; other < attrs; ++other) {
      if (other == od.attribute || od.context.Contains(other)) continue;
      enqueue_compat(od.context, od.attribute, other);
    }
  }
  for (const CompatibilityOd& od : broken_compat) {
    for (int c = 0; c < attrs; ++c) {
      if (od.context.Contains(c) || c == od.a || c == od.b) continue;
      enqueue_compat(od.context.With(c), od.a, od.b);
    }
  }

  while (!frontier.empty()) {
    auto level = frontier.begin();
    if (level->second.empty()) {
      frontier.erase(level);
      continue;
    }
    Candidate cand = level->second.front();
    level->second.pop_front();
    if (stop_requested()) {
      result.cancelled = true;
      return result;
    }
    ++result.nodes_searched;

    if (cand.kind == Candidate::Kind::kConstancy) {
      if (!oracle.Constant(cand.context, cand.a)) {
        for (int c = 0; c < attrs; ++c) {
          if (cand.context.Contains(c) || c == cand.a) continue;
          enqueue_constancy(cand.context.With(c), cand.a);
        }
        continue;
      }
      bool minimal = true;
      for (int c = cand.context.First(); c >= 0; c = cand.context.Next(c)) {
        if (oracle.Constant(cand.context.Without(c), cand.a)) {
          minimal = false;
          break;
        }
      }
      ConstancyOd od{cand.context, cand.a};
      if (minimal && surviving_constancy.count(od) == 0) {
        result.constancy_ods.push_back(od);
        ++result.new_constancy;
        if (options_.sink != nullptr) options_.sink->OnConstancy(od);
      }
    } else {
      if (!oracle.Compatible(cand.context, cand.a, cand.b)) {
        for (int c = 0; c < attrs; ++c) {
          if (cand.context.Contains(c) || c == cand.a || c == cand.b) {
            continue;
          }
          enqueue_compat(cand.context.With(c), cand.a, cand.b);
        }
        continue;
      }
      bool minimal = true;
      for (int c = cand.context.First(); c >= 0; c = cand.context.Next(c)) {
        if (oracle.Compatible(cand.context.Without(c), cand.a, cand.b)) {
          minimal = false;
          break;
        }
      }
      // Propagate: a side constant in the context suppresses the pair
      // (the constancy plus Identity/Propagate derive it).
      if (minimal && (oracle.Constant(cand.context, cand.a) ||
                      oracle.Constant(cand.context, cand.b))) {
        minimal = false;
      }
      CompatibilityOd od(cand.context, cand.a, cand.b);
      if (minimal && surviving_compat.count(od) == 0) {
        result.compatibility_ods.push_back(od);
        ++result.new_compatibility;
        if (options_.sink != nullptr) options_.sink->OnCompatibility(od);
      }
    }
  }
  return result;
}

}  // namespace fastod
