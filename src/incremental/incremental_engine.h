// The `incremental` algorithm (api/registry.h): incremental OD discovery
// over a grown dataset version, exposed through the unified Algorithm
// interface so every frontend (service, server, C ABI, Python, CLI) runs
// it like any other engine.
//
// Unlike the from-scratch engines it needs two extra inputs:
//
//   --prior=<json>    the previous run's result report (the stable
//                     fastod/incremental JSON shape of report/report.h) —
//                     the complete minimal OD set of the prior version.
//                     Attribute names are resolved against the loaded
//                     relation's schema. Required.
//   --base-rows=N     rows of the relation prefix the prior was
//                     discovered on. Defaults to -1 = take it from the
//                     bound dataset version (LoadedDataset::base_rows()),
//                     which is correct when the session binds the version
//                     produced by the append that followed the prior run.
//
// Emission order: revocations first (prior order), then new discoveries
// (lattice level order); surviving ODs are not re-emitted on the stream
// but are included in the result report, which carries the grown
// version's *complete* minimal OD set plus revoked_*_ods arrays — the
// bit-for-bit equivalent of a fresh fastod run on the grown version.
#ifndef FASTOD_INCREMENTAL_INCREMENTAL_ENGINE_H_
#define FASTOD_INCREMENTAL_INCREMENTAL_ENGINE_H_

#include <cstdint>
#include <string>

#include "api/algorithm.h"
#include "incremental/incremental.h"

namespace fastod {

/// Parses a report-shaped prior result ({"constancy_ods": [...],
/// "compatibility_ods": [...]}) against `schema`. Rejects reports with
/// bidirectional or list-shaped dependencies (the incremental engine
/// covers the two canonical shapes) and unknown attribute names.
Result<PriorOds> ParsePriorReport(const std::string& json,
                                  const Schema& schema);

class IncrementalAlgorithm : public Algorithm {
 public:
  IncrementalAlgorithm();

  const IncrementalResult& result() const { return result_; }
  int64_t base_rows() const { return resolved_base_rows_; }

  std::string ResultText() const override;
  std::string ResultJson() const override;

 protected:
  Status ExecuteInternal() override;

 private:
  std::string prior_json_;
  int64_t base_rows_option_ = -1;
  int64_t resolved_base_rows_ = 0;
  IncrementalResult result_;
  double seconds_ = 0.0;
};

}  // namespace fastod

#endif  // FASTOD_INCREMENTAL_INCREMENTAL_ENGINE_H_
