// The fastod command-line tool. All logic lives in src/cli (testable);
// this is only argv plumbing.
#include <cstdio>
#include <string>
#include <vector>

#include "cli/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  fastod::CliResult result = fastod::RunCli(args);
  if (!result.output.empty()) {
    std::fwrite(result.output.data(), 1, result.output.size(), stdout);
  }
  if (!result.error.empty()) {
    std::fwrite(result.error.data(), 1, result.error.size(), stderr);
  }
  return result.exit_code;
}
