#!/usr/bin/env python3
"""Documentation gate for the public surfaces.

Two checks, both run by CI (and runnable locally from the repo root
with no arguments):

1. C-ABI doc coverage — every public symbol declared in
   src/capi/fastod_c.h (functions, #define constants, typedefs) must be
   preceded by a comment block. A declaration immediately following
   another declaration shares its comment (grouped declarations like
   fastod_load_csv / fastod_load_csv_opts document the group once).

2. Link integrity — every relative markdown link in README.md and
   docs/**/*.md must resolve to an existing file (anchors are stripped;
   external http(s)/mailto links are skipped).

Exit code 0 when both pass; 1 with a per-violation report otherwise.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CAPI_HEADER = os.path.join(REPO, "src", "capi", "fastod_c.h")
DOC_FILES = [os.path.join(REPO, "README.md")]
DOCS_DIR = os.path.join(REPO, "docs")


def capi_doc_coverage(path):
    """Returns a list of 'file:line: message' violations."""
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()

    violations = []
    in_comment = False
    # True while the current run of lines is "documented": a comment
    # block, or declarations immediately following one. Any blank line
    # or undocumented construct resets it.
    documented = False

    # Lines that declare a public symbol we require docs for.
    fn_decl = re.compile(r"^[A-Za-z_][\w\s\*]*\bfastod_\w+\s*\(")
    define = re.compile(r"^#define\s+(FASTOD_\w+)")
    typedef = re.compile(r"^typedef\b.*;")
    continuation = re.compile(r"^[\s\w\*,\)\[\]]*[,\)];?\s*$")

    prev_was_decl = False
    for num, raw in enumerate(lines, 1):
        line = raw.strip()

        if in_comment:
            documented = True
            if "*/" in line:
                in_comment = False
            continue
        if line.startswith("/*") or line.startswith("//"):
            documented = True
            if line.startswith("/*") and "*/" not in line:
                in_comment = True
            continue

        if not line:
            documented = False
            prev_was_decl = False
            continue

        is_decl = bool(fn_decl.match(line) or define.match(line)
                       or typedef.match(line))
        if is_decl and line.endswith("_H_"):
            is_decl = False  # the include guard is not API surface
        if is_decl:
            if not (documented or prev_was_decl):
                symbol = re.search(r"(fastod_\w+|FASTOD_\w+)", line)
                name = symbol.group(1) if symbol else line[:40]
                violations.append(
                    f"{os.path.relpath(path, REPO)}:{num}: "
                    f"undocumented public symbol '{name}'")
            prev_was_decl = True
            # A multi-line prototype keeps prev_was_decl through its
            # continuation lines (handled below); documented is consumed.
            documented = False
            continue

        # Non-declaration code: preprocessor guards, extern "C" braces,
        # continuation lines of a multi-line prototype.
        if prev_was_decl and continuation.match(line):
            continue  # still inside the previous prototype
        prev_was_decl = False
        documented = False
    return violations


LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def markdown_files():
    files = [p for p in DOC_FILES if os.path.exists(p)]
    if os.path.isdir(DOCS_DIR):
        for root, _dirs, names in os.walk(DOCS_DIR):
            for name in sorted(names):
                if name.endswith(".md"):
                    files.append(os.path.join(root, name))
    return files


def link_integrity():
    violations = []
    for path in markdown_files():
        base = os.path.dirname(path)
        with open(path, encoding="utf-8") as f:
            for num, line in enumerate(f, 1):
                for target in LINK.findall(line):
                    if target.startswith(("http://", "https://",
                                          "mailto:", "#")):
                        continue
                    resolved = os.path.normpath(
                        os.path.join(base, target.split("#")[0]))
                    if not os.path.exists(resolved):
                        violations.append(
                            f"{os.path.relpath(path, REPO)}:{num}: "
                            f"broken relative link '{target}'")
    return violations


def main():
    violations = capi_doc_coverage(CAPI_HEADER)
    violations += link_integrity()
    for v in violations:
        print(v)
    checked = len(markdown_files())
    if violations:
        print(f"\ncheck_docs: FAILED ({len(violations)} violation(s))")
        return 1
    print(f"check_docs: OK (C ABI documented; links resolve in "
          f"{checked} markdown file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
