#!/usr/bin/env python3
"""Validates a Prometheus text-format scrape of the fastod server.

Reads the exposition from stdin (or a file argument) and checks the
invariants the /metrics endpoint promises:

  * every sample belongs to a family introduced by # HELP and # TYPE;
  * counter and gauge values are finite numbers;
  * histograms are cumulative: bucket counts are non-decreasing in le,
    the series ends with le="+Inf", and that bucket equals _count;
  * the expected fastod families are present (pass --require NAME to
    add more).

Exit code 0 on a valid scrape, 1 with a message otherwise. Used by the
CI serve smoke test; handy against a live server too:

    curl -sf http://127.0.0.1:8080/metrics | tools/check_metrics.py
"""
import argparse
import math
import re
import sys

SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>.*)\})? (?P<value>\S+)$')

DEFAULT_REQUIRED = [
    "fastod_sessions_total",
    "fastod_session_execute_seconds",
    "fastod_http_requests_total",
    "fastod_http_request_seconds",
    "fastod_dataset_store_resident_bytes",
    "fastod_service_active_sessions",
]


def base_family(name):
    """The family a sample line belongs to (strips histogram suffixes)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse_value(text):
    value = float(text)  # raises on malformed numbers
    if math.isnan(value):
        raise ValueError("NaN sample value")
    return value


def le_of(labels):
    match = re.search(r'le="([^"]*)"', labels or "")
    return match.group(1) if match else None


def series_key(labels):
    """Label set minus le: one histogram series per remaining labels."""
    return re.sub(r'(^|,)le="[^"]*"', "", labels or "")


def check(text, required):
    helps, types = {}, {}
    # family -> series_key -> list of (le, count); plus _sum/_count.
    buckets, sums, counts = {}, {}, {}
    families_seen = set()
    totals = {}  # family -> summed sample values (counters/gauges)

    for line_number, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            helps[line.split(" ", 3)[2]] = True
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            types[name] = kind.strip()
            continue
        if line.startswith("#"):
            continue
        match = SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {line_number}: unparseable: {line!r}")
        name = match.group("name")
        family = base_family(name)
        # A histogram's base family carries the HELP/TYPE; a plain
        # metric that merely *ends* in _sum etc. would have its own.
        if family not in types and name in types:
            family = name
        if family not in types:
            raise ValueError(f"line {line_number}: {name}: no # TYPE")
        if family not in helps:
            raise ValueError(f"line {line_number}: {name}: no # HELP")
        families_seen.add(family)
        value = parse_value(match.group("value"))
        kind = types[family]
        if kind == "histogram":
            key = series_key(match.group("labels"))
            if name.endswith("_bucket"):
                le = le_of(match.group("labels"))
                if le is None:
                    raise ValueError(
                        f"line {line_number}: bucket without le")
                buckets.setdefault(family, {}).setdefault(key, []).append(
                    (le, value))
            elif name.endswith("_sum"):
                sums.setdefault(family, {})[key] = value
            elif name.endswith("_count"):
                counts.setdefault(family, {})[key] = value
            else:
                raise ValueError(
                    f"line {line_number}: stray histogram sample {name}")
        else:
            if value < 0 and kind == "counter":
                raise ValueError(f"line {line_number}: negative counter")
            totals[family] = totals.get(family, 0) + value

    for family, series in buckets.items():
        for key, rows in series.items():
            label = f"{family}{{{key}}}"
            if rows[-1][0] != "+Inf":
                raise ValueError(f"{label}: buckets do not end at +Inf")
            values = [count for _, count in rows]
            if any(b < a for a, b in zip(values, values[1:])):
                raise ValueError(f"{label}: bucket counts not cumulative")
            if key not in counts.get(family, {}):
                raise ValueError(f"{label}: missing _count")
            if key not in sums.get(family, {}):
                raise ValueError(f"{label}: missing _sum")
            if counts[family][key] != values[-1]:
                raise ValueError(f"{label}: +Inf bucket != _count")

    missing = [name for name in required if name not in families_seen]
    if missing:
        raise ValueError(f"missing families: {', '.join(missing)}")
    if totals.get("fastod_sessions_total", 0) <= 0:
        raise ValueError("fastod_sessions_total is zero: no session was "
                         "recorded before the scrape")
    return len(families_seen)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", nargs="?", help="scrape file (default stdin)")
    parser.add_argument("--require", action="append", default=[],
                        help="additional family that must be present")
    args = parser.parse_args()
    text = (open(args.path).read() if args.path else sys.stdin.read())
    try:
        families = check(text, DEFAULT_REQUIRED + args.require)
    except ValueError as error:
        print(f"check_metrics: INVALID: {error}", file=sys.stderr)
        return 1
    print(f"check_metrics: ok ({families} families)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
