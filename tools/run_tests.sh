#!/usr/bin/env bash
# Tier-1 verify: configure, build, and run the full test suite.
# Usage: tools/run_tests.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j "$(nproc)"
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
